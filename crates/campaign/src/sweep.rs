//! Parallel multi-seed sweeps.
//!
//! A campaign is the cross product `scenarios × seeds`. Each worker
//! thread owns its own simulated `System` (the machine is `!Send` —
//! nothing is shared but the work queue), pulls `(scenario, seed)`
//! pairs from a shared injector queue, and reports records over an
//! mpsc channel. The collector sorts by `(scenario index, seed)`, so
//! the output is independent of scheduling — the same campaign at
//! `--jobs 1` and `--jobs 8` produces byte-identical artifacts.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use hypernel::System;
use hypernel_machine::fastpath_enabled;

use crate::engine::{self, EngineError};
use crate::record::RunRecord;
use crate::scenario::Scenario;

/// Sweep configuration.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Seeds per scenario (`0..seeds`).
    pub seeds: u64,
    /// Worker threads.
    pub jobs: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self { seeds: 16, jobs: 1 }
    }
}

/// One failed run: which pair, and why the engine refused it.
#[derive(Debug, Clone)]
pub struct SweepFailure {
    /// Scenario name.
    pub scenario: String,
    /// Seed of the failing run.
    pub seed: u64,
    /// The engine error.
    pub error: EngineError,
}

/// All records (sorted by `(scenario, seed)`) plus any engine failures.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Successful run records, in deterministic order.
    pub records: Vec<RunRecord>,
    /// Runs the engine could not execute at all.
    pub failures: Vec<SweepFailure>,
}

impl SweepOutcome {
    /// `true` when every run executed and every violation was declared.
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty() && self.records.iter().all(|r| r.passed)
    }
}

/// One arrival, handed to the progress callback of
/// [`run_sweep_with`] as workers finish runs. Arrivals come in
/// completion order — scheduling-dependent by nature — which is why
/// the callback only *observes*: the artifact is still assembled from
/// the deterministic sort afterwards.
#[derive(Debug)]
pub struct SweepProgress<'a> {
    /// Runs finished so far, including this one.
    pub done: usize,
    /// Total runs in the sweep.
    pub total: usize,
    /// Scenario of the finished run.
    pub scenario: &'a str,
    /// Seed of the finished run.
    pub seed: u64,
    /// The finished run's result.
    pub result: &'a Result<RunRecord, EngineError>,
}

type WorkItem = (usize, u64);
type WorkResult = (usize, u64, Result<RunRecord, EngineError>);

fn worker(
    scenarios: &[Scenario],
    queue: &Mutex<VecDeque<WorkItem>>,
    tx: &mpsc::Sender<WorkResult>,
) {
    // Warm-boot cache: booting a scenario's system is seed-independent
    // (see `engine::boot_system`), so each worker boots a template once
    // per scenario and forks a copy per seed. Forks are observationally
    // identical to fresh boots, so the records — and the campaign
    // artifact — are byte-identical with the cache on or off
    // (`HYPERNEL_NO_FASTPATH=1` disables it for the determinism gate).
    let mut templates: HashMap<usize, System> = HashMap::new();
    loop {
        let item = queue.lock().expect("queue poisoned").pop_front();
        let Some((scenario_idx, seed)) = item else {
            break;
        };
        let scenario = &scenarios[scenario_idx];
        let result = if fastpath_enabled() {
            use std::collections::hash_map::Entry;
            match templates.entry(scenario_idx) {
                Entry::Occupied(e) => Ok(&*e.into_mut()),
                Entry::Vacant(v) => engine::boot_system(scenario).map(|sys| &*v.insert(sys)),
            }
            .and_then(|t| engine::run_one_on(t.fork(), scenario, seed).map(|(record, _)| record))
        } else {
            engine::run_one(scenario, seed)
        };
        if tx.send((scenario_idx, seed, result)).is_err() {
            break;
        }
    }
}

/// Runs the full `scenarios × seeds` cross product on `config.jobs`
/// worker threads and returns the deterministic, sorted outcome.
pub fn run_sweep(scenarios: &[Scenario], config: SweepConfig) -> SweepOutcome {
    run_sweep_with(scenarios, config, |_| {})
}

/// [`run_sweep`] with a live progress callback, invoked on the
/// collector thread once per finished run (in completion order). The
/// callback feeds `hypernel-campaign run --watch`; it cannot perturb
/// the artifact, which is sorted afterwards regardless.
pub fn run_sweep_with(
    scenarios: &[Scenario],
    config: SweepConfig,
    mut on_progress: impl FnMut(&SweepProgress<'_>),
) -> SweepOutcome {
    let jobs = config.jobs.max(1);
    let mut work: VecDeque<WorkItem> = VecDeque::new();
    for (scenario_idx, _) in scenarios.iter().enumerate() {
        for seed in 0..config.seeds {
            work.push_back((scenario_idx, seed));
        }
    }
    let total = work.len();
    let queue = Arc::new(Mutex::new(work));
    let (tx, rx) = mpsc::channel::<WorkResult>();

    let mut results: Vec<WorkResult> = Vec::with_capacity(total);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let queue = Arc::clone(&queue);
            let tx = tx.clone();
            scope.spawn(move || worker(scenarios, &queue, &tx));
        }
        drop(tx);
        while let Ok(result) = rx.recv() {
            let (scenario_idx, seed, run) = &result;
            on_progress(&SweepProgress {
                done: results.len() + 1,
                total,
                scenario: &scenarios[*scenario_idx].name,
                seed: *seed,
                result: run,
            });
            results.push(result);
        }
    });

    // Scheduling decided arrival order; the artifact must not show it.
    results.sort_by_key(|(scenario_idx, seed, _)| (*scenario_idx, *seed));
    let mut outcome = SweepOutcome {
        records: Vec::with_capacity(results.len()),
        failures: Vec::new(),
    };
    for (scenario_idx, seed, result) in results {
        match result {
            Ok(record) => outcome.records.push(record),
            Err(error) => outcome.failures.push(SweepFailure {
                scenario: scenarios[scenario_idx].name.clone(),
                seed,
                error,
            }),
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::StepExpect;
    use hypernel::Mode;
    use hypernel_kernel::AttackStep;

    fn scenarios() -> Vec<Scenario> {
        vec![
            Scenario::new("sweep-cred", Mode::Hypernel)
                .background(1)
                .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Detected),
            Scenario::new("sweep-native", Mode::Native).step(
                AttackStep::CredEscalation { pid: 1 },
                StepExpect::Undetected,
            ),
        ]
    }

    #[test]
    fn sweep_is_sorted_and_complete() {
        let outcome = run_sweep(&scenarios(), SweepConfig { seeds: 3, jobs: 2 });
        assert!(outcome.failures.is_empty());
        assert_eq!(outcome.records.len(), 6);
        let keys: Vec<(String, u64)> = outcome
            .records
            .iter()
            .map(|r| (r.scenario.clone(), r.seed))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        // scenario order in the input is alphabetical here, so sorted
        // keys coincide with (scenario_idx, seed) order.
        assert_eq!(keys, sorted);
        assert!(outcome.all_passed());
    }

    #[test]
    fn jobs_count_does_not_change_the_artifact() {
        let scenarios = scenarios();
        let serial = run_sweep(&scenarios, SweepConfig { seeds: 2, jobs: 1 });
        let threaded = run_sweep(&scenarios, SweepConfig { seeds: 2, jobs: 4 });
        let a: Vec<String> = serial
            .records
            .iter()
            .map(|r| r.to_json().to_string())
            .collect();
        let b: Vec<String> = threaded
            .records
            .iter()
            .map(|r| r.to_json().to_string())
            .collect();
        assert_eq!(a, b, "parallelism must not leak into records");
    }

    #[test]
    fn warm_boot_cache_does_not_change_the_artifact() {
        // Same campaign with the per-worker template cache exercised
        // hard (one worker, many seeds per scenario) must serialize
        // identically to an independent in-process reference built run
        // by run — the exact comparison the CI determinism gate repeats
        // across processes with HYPERNEL_NO_FASTPATH=1.
        let scenarios = scenarios();
        let swept = run_sweep(&scenarios, SweepConfig { seeds: 3, jobs: 1 });
        let mut reference = Vec::new();
        for scenario in &scenarios {
            for seed in 0..3 {
                reference.push(
                    crate::engine::run_one(scenario, seed)
                        .expect("runs")
                        .to_json()
                        .to_string(),
                );
            }
        }
        let swept: Vec<String> = swept
            .records
            .iter()
            .map(|r| r.to_json().to_string())
            .collect();
        assert_eq!(swept, reference);
    }

    #[test]
    fn engine_failures_are_reported_not_dropped() {
        let bad = vec![Scenario::new("sweep-bad", Mode::Hypernel)
            .step(AttackStep::CredEscalation { pid: 999 }, StepExpect::Any)];
        let outcome = run_sweep(&bad, SweepConfig { seeds: 2, jobs: 1 });
        assert_eq!(outcome.failures.len(), 2);
        assert!(!outcome.all_passed());
    }
}
