//! `hypernel-campaign` — adversarial campaign runner.
//!
//! ```text
//! hypernel-campaign run --corpus <dir> [--seeds N] [--jobs N]
//!                       [--out <campaign.jsonl>] [--summary <file>]
//!                       [--scenario <name>] [--metrics <dir>]
//!                       [--blackbox <dir>] [--coverage <file>] [--watch]
//! hypernel-campaign list --corpus <dir>
//! hypernel-campaign minimize --corpus <dir> --scenario <name> [--seed N]
//!                            [--blackbox <file>]
//! hypernel-campaign explore --corpus <dir> --out <dir> [--seeds N]
//!                           [--jobs N] [--max-emit M]
//! hypernel-campaign lint <dir>
//! hypernel-campaign selftest
//! ```
//!
//! `run` exits nonzero when any run fails an oracle the scenario did
//! not declare — the CI campaign-smoke gate keys on that.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hypernel_campaign::coverage::{atlas_json, CoverageMap};
use hypernel_campaign::explore::{explore, ExploreConfig};
use hypernel_campaign::record::{summarize, summary_json};
use hypernel_campaign::scenario::Scenario;
use hypernel_campaign::sweep::{run_sweep, run_sweep_with, SweepConfig};
use hypernel_campaign::{minimize, MinimizeError};

const USAGE: &str = "\
hypernel-campaign — adversarial attack/fault campaigns for Hypernel

USAGE:
  hypernel-campaign run --corpus <dir> [--seeds N] [--jobs N]
                        [--out <campaign.jsonl>] [--summary <file>]
                        [--scenario <name>] [--metrics <dir>]
                        [--blackbox <dir>] [--coverage <file>] [--watch]
      Sweeps every corpus scenario across seeds 0..N (default 16) on a
      worker pool (default 1 job). Writes one JSON record per run,
      sorted by (scenario, seed) — byte-identical regardless of --jobs.
      --metrics writes each run's windowed time series to
      <dir>/<scenario>-s<seed>.metrics.jsonl; --blackbox writes each
      failing run's flight-recorder dump to
      <dir>/<scenario>-s<seed>.blackbox.json; --coverage merges every
      run's structural coverage into one canonical coverage.json atlas
      (byte-identical at any --jobs); --watch prints one live progress
      line per finished run (arrival order — progress only, the
      artifacts are unaffected). Exits 1 when any run violates an
      oracle the scenario did not declare.
  hypernel-campaign list --corpus <dir>
      Prints each scenario's name, mode, step count and fault count.
  hypernel-campaign minimize --corpus <dir> --scenario <name> [--seed N]
                             [--blackbox <file>]
      Reduces the named scenario's fault schedule to a minimal set of
      single-occurrence faults that still masks detection. --blackbox
      writes the validation run's flight-recorder dump.
  hypernel-campaign explore --corpus <dir> --out <dir> [--seeds N]
                            [--jobs N] [--max-emit M]
      Coverage-guided mutation: sweeps the corpus (seeds 0..N, default
      2) to learn which (outcome, fault, oracle, mode) tuples it covers,
      then probes deterministic mutants (mode flips, step swaps, fault
      substitutions, MBM pressure) and writes every mutant that runs
      clean, lints clean and reaches a new tuple to <out>/<name>.toml
      (at most M, default 4). Exits 1 when nothing novel is found.
  hypernel-campaign lint <dir>
      Schema-lints every scenario file in <dir>: keys the loader would
      silently ignore, Hypernel-only knobs on baseline modes, unhittable
      latency bounds, undeclared masks, duplicate or drifting names.
      Exits 1 when anything is flagged.
  hypernel-campaign selftest
      Runs a built-in scenario pair end to end; exits nonzero on any
      oracle violation.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "run" => cmd_run(rest),
        "list" => cmd_list(rest),
        "minimize" => cmd_minimize(rest),
        "explore" => cmd_explore(rest),
        "lint" => cmd_lint(rest),
        "selftest" => cmd_selftest(),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("hypernel-campaign: {message}");
            ExitCode::FAILURE
        }
    }
}

type ParsedOptions = Vec<(String, String)>;

fn split_args(rest: &[String], flags: &[&str]) -> Result<ParsedOptions, String> {
    let mut options = Vec::new();
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument `{arg}`"));
        };
        if !flags.contains(&name) {
            return Err(format!("unknown option `--{name}`"));
        }
        let value = iter
            .next()
            .cloned()
            .ok_or_else(|| format!("option `--{name}` needs a value"))?;
        options.push((name.to_string(), value));
    }
    Ok(options)
}

fn opt<'a>(options: &'a [(String, String)], name: &str) -> Option<&'a str> {
    options
        .iter()
        .rev()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn opt_num<T: std::str::FromStr>(
    options: &[(String, String)],
    name: &str,
    default: T,
) -> Result<T, String> {
    match opt(options, name) {
        None => Ok(default),
        Some(text) => text
            .parse()
            .map_err(|_| format!("option `--{name}`: invalid number `{text}`")),
    }
}

/// Loads every `*.toml` scenario under `dir`, sorted by file name so
/// the sweep order (and thus the artifact) is stable.
fn load_corpus(dir: &str) -> Result<Vec<Scenario>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read corpus dir `{dir}`: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no `*.toml` scenarios in `{dir}`"));
    }
    let mut scenarios = Vec::with_capacity(paths.len());
    for path in &paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        let scenario =
            Scenario::from_toml(&text).map_err(|e| format!("`{}`: {e}", path.display()))?;
        scenarios.push(scenario);
    }
    Ok(scenarios)
}

fn write_or_stdout(path: Option<&str>, content: &str, what: &str) -> Result<(), String> {
    match path {
        Some(path) => {
            if let Some(parent) = Path::new(path).parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)
                        .map_err(|e| format!("cannot create `{}`: {e}", parent.display()))?;
                }
            }
            std::fs::write(path, content)
                .map_err(|e| format!("cannot write {what} `{path}`: {e}"))?;
            eprintln!("wrote {what} to {path}");
            Ok(())
        }
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

fn cmd_run(rest: &[String]) -> Result<ExitCode, String> {
    // `--watch` is the one boolean flag; peel it off before the
    // value-taking parser sees it.
    let watch = rest.iter().any(|a| a == "--watch");
    let rest: Vec<String> = rest.iter().filter(|a| *a != "--watch").cloned().collect();
    let options = split_args(
        &rest,
        &[
            "corpus", "seeds", "jobs", "out", "summary", "scenario", "metrics", "blackbox",
            "coverage",
        ],
    )?;
    let corpus = opt(&options, "corpus").ok_or("`run` needs --corpus <dir>")?;
    let seeds: u64 = opt_num(&options, "seeds", 16)?;
    let jobs: usize = opt_num(&options, "jobs", 1)?;
    let mut scenarios = load_corpus(corpus)?;
    if let Some(only) = opt(&options, "scenario") {
        scenarios.retain(|s| s.name == only);
        if scenarios.is_empty() {
            return Err(format!("no scenario named `{only}` in `{corpus}`"));
        }
    }

    let outcome = run_sweep_with(&scenarios, SweepConfig { seeds, jobs }, |p| {
        if watch {
            let status = match p.result {
                Ok(r) if r.passed => "ok".to_string(),
                Ok(r) => format!("FAIL ({} unexpected)", r.unexpected_violations().count()),
                Err(e) => format!("ERROR: {e}"),
            };
            eprintln!(
                "[{:>3}/{}] {:<28} seed {:<4} {status}",
                p.done, p.total, p.scenario, p.seed
            );
        }
    });

    if let Some(dir) = opt(&options, "metrics") {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create `{dir}`: {e}"))?;
        let mut written = 0usize;
        for record in &outcome.records {
            if let Some(doc) = &record.metrics {
                let path = Path::new(dir).join(format!(
                    "{}-s{}.metrics.jsonl",
                    record.scenario, record.seed
                ));
                std::fs::write(&path, doc.to_jsonl())
                    .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
                written += 1;
            }
        }
        eprintln!("wrote {written} metrics series to {dir}");
    }
    if let Some(dir) = opt(&options, "blackbox") {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create `{dir}`: {e}"))?;
        let mut written = 0usize;
        for record in &outcome.records {
            if let Some(dump) = &record.blackbox {
                let path = Path::new(dir).join(format!(
                    "{}-s{}.blackbox.json",
                    record.scenario, record.seed
                ));
                std::fs::write(&path, format!("{dump}\n"))
                    .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
                written += 1;
            }
        }
        eprintln!("wrote {written} blackbox dump(s) to {dir}");
    }

    let mut jsonl = String::new();
    for record in &outcome.records {
        jsonl.push_str(&record.to_json().to_string());
        jsonl.push('\n');
    }
    write_or_stdout(opt(&options, "out"), &jsonl, "campaign records")?;

    let rows = summarize(&outcome.records);
    let summary = format!("{}\n", summary_json(&rows));
    if let Some(path) = opt(&options, "summary") {
        write_or_stdout(Some(path), &summary, "campaign summary")?;
    }

    if let Some(path) = opt(&options, "coverage") {
        let mut merged = CoverageMap::new();
        for record in &outcome.records {
            if let Some(cov) = &record.coverage {
                merged.merge(cov);
            }
        }
        let atlas = format!("{}\n", atlas_json(&merged, outcome.records.len() as u64));
        write_or_stdout(Some(path), &atlas, "coverage atlas")?;
    }

    for row in &rows {
        let faults = row.faults.total();
        eprintln!(
            "{:<28} runs {:>3}  passed {:>3}  expected-violations {:>3}  unexpected {:>3}{}{}",
            row.scenario,
            row.runs,
            row.passed,
            row.expected_violations,
            row.unexpected_violations,
            row.max_latency
                .map(|l| format!("  max-latency {l}"))
                .unwrap_or_default(),
            if faults > 0 {
                format!("  fault-hits {faults}")
            } else {
                String::new()
            },
        );
    }
    for failure in &outcome.failures {
        eprintln!(
            "ERROR {} seed {}: {}",
            failure.scenario, failure.seed, failure.error
        );
    }
    let unexpected: u64 = outcome
        .records
        .iter()
        .map(|r| r.unexpected_violations().count() as u64)
        .sum();
    if !outcome.failures.is_empty() || unexpected > 0 {
        eprintln!(
            "campaign FAILED: {unexpected} unexpected violation(s), {} engine failure(s)",
            outcome.failures.len()
        );
        return Ok(ExitCode::FAILURE);
    }
    eprintln!(
        "campaign passed: {} runs, {} scenario(s), seeds 0..{seeds}",
        outcome.records.len(),
        rows.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_list(rest: &[String]) -> Result<ExitCode, String> {
    let options = split_args(rest, &["corpus"])?;
    let corpus = opt(&options, "corpus").ok_or("`list` needs --corpus <dir>")?;
    for scenario in load_corpus(corpus)? {
        println!(
            "{:<28} {:<10} steps {:>2}  faults {:>2}  {}",
            scenario.name,
            scenario.mode.to_string(),
            scenario.steps.len(),
            scenario.faults.specs.len(),
            scenario.description,
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_minimize(rest: &[String]) -> Result<ExitCode, String> {
    let options = split_args(rest, &["corpus", "scenario", "seed", "blackbox"])?;
    let corpus = opt(&options, "corpus").ok_or("`minimize` needs --corpus <dir>")?;
    let name = opt(&options, "scenario").ok_or("`minimize` needs --scenario <name>")?;
    let seed: u64 = opt_num(&options, "seed", 0)?;
    let scenarios = load_corpus(corpus)?;
    let scenario = scenarios
        .iter()
        .find(|s| s.name == name)
        .ok_or_else(|| format!("no scenario named `{name}` in `{corpus}`"))?;
    match minimize(scenario, seed) {
        Ok(outcome) => {
            println!(
                "minimized {} seed {seed}: {} injected event(s) -> {} (in {} probe runs)",
                scenario.name,
                outcome.original_events,
                outcome.schedule.len(),
                outcome.probes
            );
            for spec in &outcome.schedule {
                let param = if spec.param != 0 && spec.param != u64::MAX {
                    format!(" (param {})", spec.param)
                } else {
                    String::new()
                };
                println!("  {} at occurrence {}{param}", spec.kind, spec.at);
            }
            if let Some(path) = opt(&options, "blackbox") {
                write_or_stdout(
                    Some(path),
                    &format!("{}\n", outcome.blackbox),
                    "blackbox dump",
                )?;
            }
            Ok(ExitCode::SUCCESS)
        }
        Err(MinimizeError::NoDetectionGap) => {
            println!(
                "{} seed {seed}: every monitored write was detected; nothing to minimize",
                scenario.name
            );
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => Err(e.to_string()),
    }
}

fn cmd_explore(rest: &[String]) -> Result<ExitCode, String> {
    let options = split_args(rest, &["corpus", "out", "seeds", "jobs", "max-emit"])?;
    let corpus = opt(&options, "corpus").ok_or("`explore` needs --corpus <dir>")?;
    let out_dir = opt(&options, "out").ok_or("`explore` needs --out <dir>")?;
    let config = ExploreConfig {
        seeds: opt_num(&options, "seeds", 2)?,
        jobs: opt_num(&options, "jobs", 1)?,
        max_emit: opt_num(&options, "max-emit", 4)?,
    };
    let scenarios = load_corpus(corpus)?;
    let outcome = explore(&scenarios, &config).map_err(|e| e.to_string())?;
    eprintln!(
        "explore: corpus covers {} tuple(s); probed {} candidate(s)",
        outcome.baseline_tuples, outcome.candidates_tried
    );
    std::fs::create_dir_all(out_dir).map_err(|e| format!("cannot create `{out_dir}`: {e}"))?;
    for emitted in &outcome.emitted {
        let path = Path::new(out_dir).join(format!("{}.toml", emitted.name));
        std::fs::write(&path, &emitted.toml)
            .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
        eprintln!("wrote {}:", path.display());
        for tuple in &emitted.new_tuples {
            eprintln!("  + {tuple}");
        }
    }
    if outcome.emitted.is_empty() {
        eprintln!("explore found nothing novel — the corpus already covers every reachable mutant tuple probed");
        return Ok(ExitCode::FAILURE);
    }
    eprintln!(
        "explore emitted {} novel scenario(s) to {out_dir}",
        outcome.emitted.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_lint(rest: &[String]) -> Result<ExitCode, String> {
    let [dir] = rest else {
        return Err("`lint` needs exactly one argument: the corpus directory".to_string());
    };
    let issues = hypernel_campaign::lint::lint_dir(Path::new(dir))?;
    for issue in &issues {
        eprintln!("lint: {issue}");
    }
    if issues.is_empty() {
        eprintln!("lint passed: `{dir}` is clean");
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("lint FAILED: {} issue(s) in `{dir}`", issues.len());
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_selftest() -> Result<ExitCode, String> {
    use hypernel::Mode;
    use hypernel_campaign::scenario::StepExpect;
    use hypernel_kernel::AttackStep;
    use hypernel_machine::FaultSpec;

    let scenarios = vec![
        Scenario::new("selftest-cred", Mode::Hypernel)
            .background(2)
            .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Detected),
        Scenario::new("selftest-drop", Mode::Hypernel)
            .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Masked)
            .fault(FaultSpec::drop_irq(1, u64::MAX)),
        Scenario::new("selftest-native", Mode::Native).step(
            AttackStep::CredEscalation { pid: 1 },
            StepExpect::Undetected,
        ),
    ];
    let outcome = run_sweep(&scenarios, SweepConfig { seeds: 4, jobs: 2 });
    if !outcome.all_passed() {
        for r in &outcome.records {
            for v in r.unexpected_violations() {
                eprintln!(
                    "{} seed {}: [{}] {}",
                    r.scenario, r.seed, v.oracle, v.detail
                );
            }
        }
        return Err("selftest: unexpected oracle violations".to_string());
    }
    let min = minimize(&scenarios[1], 0).map_err(|e| format!("selftest minimize: {e}"))?;
    if min.schedule.is_empty() {
        return Err("selftest: minimizer returned an empty schedule".to_string());
    }
    println!(
        "selftest passed: {} runs, minimize {} -> {} event(s)",
        outcome.records.len(),
        min.original_events,
        min.schedule.len()
    );
    Ok(ExitCode::SUCCESS)
}
