//! Deterministic single-run execution: one `(scenario, seed)` pair in,
//! one [`RunRecord`] out.
//!
//! Everything the run does is a pure function of `(scenario, seed)`:
//! the background workload interleaving is driven by a splitmix64
//! stream seeded from both, the machine itself is cycle-deterministic,
//! and records carry no wall-clock state — so re-running the same pair
//! yields byte-identical JSON, which the sweep tests assert.

use std::fmt;

use hypernel::metrics::metric_samples;
use hypernel::{Mode, System, SystemBuilder};
use hypernel_kernel::kernel::{KernelError, MonitorHooks};
use hypernel_machine::addr::PhysAddr;
use hypernel_mbm::MbmConfig;
use hypernel_telemetry::MetricsRecorder;
use hypernel_workloads::lmbench::{run_op, LmbenchOp};

use crate::blackbox;
use crate::coverage;
use crate::oracle;
use crate::record::{AuditRecord, RunRecord, StepRecord};
use crate::scenario::Scenario;

/// Background operations the interleaver picks from. All are safe to
/// repeat in any order under every mode.
const BACKGROUND_OPS: &[LmbenchOp] = &[
    LmbenchOp::SyscallStat,
    LmbenchOp::SignalInstall,
    LmbenchOp::SignalOverhead,
    LmbenchOp::Mmap,
    LmbenchOp::PageFault,
    LmbenchOp::ForkExit,
];

/// A splitmix64 stream — tiny, seedable, and stable across platforms,
/// which is all the interleaver needs.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// FNV-1a, used to fold the scenario name into the seed so equal seeds
/// still produce distinct interleavings across scenarios (and by
/// `explore` as the stable mutant-id suffix).
pub(crate) fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in text.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A run failed outright (scenario referenced a missing task/path, or
/// the kernel hit a resource limit) — distinct from oracle violations,
/// which are *results*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    /// What failed.
    pub message: String,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for EngineError {}

impl From<KernelError> for EngineError {
    fn from(e: KernelError) -> Self {
        Self {
            message: e.to_string(),
        }
    }
}

/// Boots the system a scenario runs on. The result depends only on the
/// scenario — never the seed — so sweeps boot each scenario **once** and
/// [`System::fork`] a copy per seed (the warm-boot fast path); a fork is
/// observationally identical to a fresh boot.
///
/// # Errors
///
/// Propagates boot failures as [`EngineError`].
pub fn boot_system(scenario: &Scenario) -> Result<System, EngineError> {
    let mut builder = SystemBuilder::new(scenario.mode);
    if !scenario.faults.is_empty() {
        builder = builder.fault_plan(scenario.faults.clone());
    }
    if scenario.fifo_capacity.is_some() || scenario.drain_budget.is_some() {
        use hypernel_kernel::layout;
        let mut config = MbmConfig::standard(
            PhysAddr::new(layout::MBM_WINDOW_BASE),
            layout::MBM_WINDOW_LEN,
            PhysAddr::new(layout::MBM_BITMAP_BASE),
            PhysAddr::new(layout::MBM_RING_BASE),
            layout::MBM_RING_ENTRIES,
        )
        .with_secure_guard(
            PhysAddr::new(layout::HYPERSEC_PRIVATE_BASE),
            layout::HYPERSEC_PRIVATE_SIZE,
        );
        if let Some(capacity) = scenario.fifo_capacity {
            config.fifo_capacity = capacity;
        }
        if let Some(budget) = scenario.drain_budget {
            config.drain_per_transaction = Some(budget);
        }
        builder = builder.mbm_config(config);
    }
    let mut sys = builder.build().map_err(EngineError::from)?;
    if scenario.mode == Mode::Hypernel {
        let monitor = scenario.monitor;
        let (kernel, machine, hyp) = sys.parts();
        kernel
            .arm_monitor_hooks(machine, hyp, MonitorHooks { mode: monitor })
            .map_err(EngineError::from)?;
    }
    // Lower the composed system description (if any) after the hooks
    // are armed, so the derived watch set registers under Hypernel —
    // and runs identically-unwatched under the baseline modes. Still
    // seed-independent: the lowering is a pure function of the doc.
    if let Some(doc) = &scenario.compose {
        let (kernel, machine, hyp) = sys.parts();
        hypernel_compose::apply(doc, kernel, machine, hyp).map_err(EngineError::from)?;
    }
    Ok(sys)
}

fn run_background(sys: &mut System, rng: &mut SplitMix64, ops: u64) -> Result<(), EngineError> {
    for _ in 0..ops {
        let op = BACKGROUND_OPS[(rng.next_u64() % BACKGROUND_OPS.len() as u64) as usize];
        let (kernel, machine, hyp) = sys.parts();
        run_op(kernel, machine, hyp, op, 1).map_err(EngineError::from)?;
    }
    Ok(())
}

fn span_overlaps(pa: u64, base: u64, len: u64) -> bool {
    pa >= base && pa < base + len
}

/// Executes one `(scenario, seed)` run and evaluates the oracles.
///
/// # Errors
///
/// Returns an [`EngineError`] when the scenario itself cannot run
/// (dangling pid/path, out of frames). Attack outcomes and oracle
/// violations are *not* errors — they are the record.
pub fn run_one(scenario: &Scenario, seed: u64) -> Result<RunRecord, EngineError> {
    run_one_logged(scenario, seed).map(|(record, _)| record)
}

/// [`run_one`], but also returns the injected-fault hit log — the raw
/// material the minimizer expands into single-occurrence schedules.
///
/// # Errors
///
/// Same as [`run_one`].
pub fn run_one_logged(
    scenario: &Scenario,
    seed: u64,
) -> Result<(RunRecord, Vec<hypernel_machine::FaultHit>), EngineError> {
    run_one_on(boot_system(scenario)?, scenario, seed)
}

/// [`run_one_logged`] on an already-booted system — the warm-boot entry
/// point. `sys` must come from [`boot_system`] (or a [`System::fork`] of
/// one) for the same scenario; the record is identical either way.
///
/// # Errors
///
/// Same as [`run_one`].
pub fn run_one_on(
    sys: System,
    scenario: &Scenario,
    seed: u64,
) -> Result<(RunRecord, Vec<hypernel_machine::FaultHit>), EngineError> {
    run_one_full(sys, scenario, seed).map(|(record, log, _)| (record, log))
}

/// [`run_one_on`], but also hands back the finished [`System`] so
/// callers (the `hypernel-audit` CLI) can run further analyses — a full
/// static audit, sanitizer inspection — over the exact final state the
/// record describes.
///
/// # Errors
///
/// Same as [`run_one`].
pub fn run_one_full(
    mut sys: System,
    scenario: &Scenario,
    seed: u64,
) -> Result<(RunRecord, Vec<hypernel_machine::FaultHit>, System), EngineError> {
    let mut rng = SplitMix64::new(seed ^ fnv1a(&scenario.name));

    // The always-on flight recorder: a small ring of recent telemetry
    // events, dumped as `blackbox.json` if the run fails. Installed
    // identically after a fresh boot or a fork (forks detach sinks),
    // and recording never changes simulated results — so the record
    // stays a pure function of `(scenario, seed)`.
    sys.enable_telemetry(blackbox::FLIGHT_RING_CAPACITY);

    // Windowed metrics: poll the standard catalog at step boundaries.
    // The baseline sample right after boot keeps boot-time activity out
    // of window 0's deltas.
    let metrics_config = scenario.metrics.clone().unwrap_or_default().to_config();
    let mut recorder = MetricsRecorder::new(&metrics_config);
    recorder.sample(sys.cycles(), &metric_samples(&sys));

    // (step index, cycles at step start, cycles after its service pass)
    let mut timings: Vec<(u64, u64)> = Vec::new();
    let mut outcomes = Vec::new();
    for spec in &scenario.steps {
        run_background(&mut sys, &mut rng, scenario.background_ops)?;
        recorder.sample(sys.cycles(), &metric_samples(&sys));
        let started = sys.cycles();
        let result = {
            let (kernel, machine, hyp) = sys.parts();
            kernel
                .run_attack_step(machine, hyp, &spec.step)
                .map_err(EngineError::from)?
        };
        // Service immediately so each step's detections land before the
        // next step muddies the water; latency covers write → dispatch.
        sys.service_interrupts().map_err(EngineError::from)?;
        timings.push((started, sys.cycles()));
        outcomes.push(result);
        recorder.sample(sys.cycles(), &metric_samples(&sys));
    }
    run_background(&mut sys, &mut rng, scenario.background_ops)?;
    sys.service_interrupts().map_err(EngineError::from)?;
    recorder.sample(sys.cycles(), &metric_samples(&sys));

    let detections: Vec<(u64, u64)> = sys
        .hypersec()
        .map(|hs| {
            hs.detections()
                .iter()
                .map(|d| (d.event.pa.raw(), d.event.value))
                .collect()
        })
        .unwrap_or_default();

    let steps: Vec<StepRecord> = scenario
        .steps
        .iter()
        .zip(outcomes.iter())
        .zip(timings.iter())
        .map(|((spec, result), (started, serviced))| {
            let monitored = result.monitored.map(|(base, len)| (base.raw(), len));
            let matched = monitored.map_or(0, |(base, len)| {
                detections
                    .iter()
                    .filter(|(pa, _)| span_overlaps(*pa, base, len))
                    .count() as u64
            });
            StepRecord {
                name: spec.step.name().to_string(),
                outcome: result.outcome.to_string(),
                blocked: !result.outcome.succeeded(),
                monitored,
                detections: matched,
                latency: Some(serviced - started),
            }
        })
        .collect();

    let audit = sys.audit_hypersec();
    let static_audit = sys.audit_static();
    let mbm = sys.mbm_stats();
    let faults = sys.fault_stats();
    let fault_log = sys.fault_log().unwrap_or_default();
    let violations = oracle::evaluate(&oracle::OracleInput {
        scenario,
        steps: &steps,
        audit: audit.as_ref(),
        static_audit: Some(&static_audit),
        mbm,
        faults,
    });
    let passed = violations.iter().all(|v| v.expected);

    // Detection latencies are event-driven gauges: feed each detected
    // step's latency into the window its service pass landed in.
    for (step, (_, serviced)) in steps.iter().zip(timings.iter()) {
        if step.detections > 0 {
            if let Some(latency) = step.latency {
                recorder.observe("detection-latency-max", *serviced, latency);
            }
        }
    }
    let metrics_doc = recorder.finish(
        Some(&scenario.name),
        Some(seed),
        Some(&scenario.mode.to_string()),
    );

    let coverage = coverage::coverage_of_run(&sys, scenario, &steps, &violations, &fault_log);

    let blackbox = if passed {
        None
    } else {
        let reason = violations
            .iter()
            .find(|v| !v.expected)
            .map(|v| format!("unexpected `{}` violation: {}", v.oracle, v.detail))
            .unwrap_or_else(|| "run failed".to_string());
        Some(
            blackbox::capture(
                &sys,
                scenario,
                seed,
                &reason,
                &violations,
                &fault_log,
                Some(&metrics_doc),
            )
            .to_string(),
        )
    };

    let record = RunRecord {
        scenario: scenario.name.clone(),
        mode: scenario.mode.to_string(),
        seed,
        cycles: sys.cycles(),
        steps,
        detections_total: detections.len() as u64,
        mbm,
        faults,
        audit: Some(AuditRecord {
            roots: static_audit.roots_walked,
            tables: static_audit.tables_walked,
            leaves: static_audit.leaves_checked,
            findings: static_audit.findings.len() as u64,
            differential_agrees: static_audit
                .differential
                .as_ref()
                .map(hypernel::audit::DifferentialReport::agrees),
        }),
        violations,
        passed,
        metrics: Some(metrics_doc),
        blackbox,
        coverage: Some(coverage),
    };
    Ok((record, fault_log, sys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::StepExpect;
    use hypernel_kernel::AttackStep;
    use hypernel_machine::FaultSpec;

    fn cred_scenario() -> Scenario {
        Scenario::new("unit-cred", Mode::Hypernel)
            .background(2)
            .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Detected)
    }

    #[test]
    fn detected_attack_passes_cleanly() {
        let record = run_one(&cred_scenario(), 7).expect("runs");
        assert!(record.passed, "violations: {:?}", record.violations);
        assert_eq!(record.steps.len(), 1);
        assert!(!record.steps[0].blocked);
        assert!(record.steps[0].detections >= 1);
        assert!(record.steps[0].latency.unwrap() > 0);
        assert!(record.detections_total >= 1);
    }

    #[test]
    fn same_seed_is_byte_identical_different_seed_is_not() {
        let scenario = cred_scenario();
        let a = run_one(&scenario, 11).expect("runs").to_json().to_string();
        let b = run_one(&scenario, 11).expect("runs").to_json().to_string();
        assert_eq!(a, b, "determinism: same (scenario, seed), same bytes");
        let c = run_one(&scenario, 12).expect("runs").to_json().to_string();
        assert_ne!(a, c, "different seed must change the interleaving");
    }

    #[test]
    fn warm_boot_fork_yields_identical_record() {
        let scenario = cred_scenario();
        let cold = run_one(&scenario, 5).expect("cold").to_json().to_string();
        let template = boot_system(&scenario).expect("template");
        for seed in [5, 9] {
            let (warm, _) = run_one_on(template.fork(), &scenario, seed).expect("warm");
            let reference = run_one(&scenario, seed)
                .expect("cold")
                .to_json()
                .to_string();
            assert_eq!(warm.to_json().to_string(), reference, "seed {seed}");
        }
        // The template itself is untouched and still usable.
        let (again, _) = run_one_on(template.fork(), &scenario, 5).expect("reuse");
        assert_eq!(again.to_json().to_string(), cold);
    }

    #[test]
    fn warm_boot_fork_matches_under_faults() {
        let scenario = Scenario::new("unit-drop", Mode::Hypernel)
            .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Masked)
            .fault(FaultSpec::drop_irq(1, u64::MAX));
        let template = boot_system(&scenario).expect("template");
        let (warm, warm_log) = run_one_on(template.fork(), &scenario, 3).expect("warm");
        let (cold, cold_log) = run_one_logged(&scenario, 3).expect("cold");
        assert_eq!(warm.to_json().to_string(), cold.to_json().to_string());
        assert_eq!(warm_log, cold_log, "fault hit logs must agree");
    }

    #[test]
    fn native_mode_expects_no_detection() {
        let scenario = Scenario::new("unit-native", Mode::Native).step(
            AttackStep::CredEscalation { pid: 1 },
            StepExpect::Undetected,
        );
        let record = run_one(&scenario, 1).expect("runs");
        assert!(record.passed, "violations: {:?}", record.violations);
        assert_eq!(record.detections_total, 0);
        assert!(record.mbm.is_none());
    }

    #[test]
    fn dropped_irq_scenario_is_flagged_but_expected() {
        let scenario = Scenario::new("unit-drop", Mode::Hypernel)
            .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Masked)
            .fault(FaultSpec::drop_irq(1, u64::MAX));
        let record = run_one(&scenario, 1).expect("runs");
        assert!(record.passed, "declared mask: {:?}", record.violations);
        let flagged: Vec<_> = record
            .violations
            .iter()
            .filter(|v| v.oracle == "detection")
            .collect();
        assert_eq!(flagged.len(), 1, "the gap must be flagged");
        assert!(flagged[0].expected);
        assert!(record.faults.unwrap().irqs_dropped > 0);
    }

    #[test]
    fn missing_task_is_an_engine_error() {
        let scenario = Scenario::new("unit-bad", Mode::Hypernel)
            .step(AttackStep::CredEscalation { pid: 999 }, StepExpect::Any);
        assert!(run_one(&scenario, 1).is_err());
    }
}
