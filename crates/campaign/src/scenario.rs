//! Declarative attack/fault scenarios.
//!
//! A [`Scenario`] composes an attacker program from the kernel crate's
//! attack primitives ([`AttackStep`]) with seeded background workload,
//! a protection mode, optional MBM configuration pressure, and a
//! [`FaultPlan`] injected at the machine/MBM boundary. Scenarios are
//! built either in Rust (builder methods) or loaded from the TOML
//! subset in `corpus/*.toml` (see `docs/CAMPAIGN.md` for the schema).

use std::fmt;

use hypernel::Mode;
use hypernel_compose::ComposeDoc;
use hypernel_kernel::kernel::MonitorMode;
use hypernel_kernel::AttackStep;
use hypernel_machine::{FaultKind, FaultPlan, FaultSpec};
use hypernel_telemetry::metrics::{MetricsConfig, DEFAULT_WINDOW_CYCLES};

use crate::toml::{self, TomlTable};

/// What a step's outcome should look like under this scenario's mode —
/// the ground truth the `outcomes` and `detection` oracles check
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepExpect {
    /// The protection must refuse the operation.
    Blocked,
    /// The write completes and the MBM pipeline must flag it.
    Detected,
    /// The write completes and nothing watches it (baseline modes).
    Undetected,
    /// The write completes but a *declared fault* masks detection: the
    /// detection oracle still flags the gap, marked expected, so the
    /// run passes while the record shows exactly what was missed.
    Masked,
    /// No expectation (exploratory steps).
    Any,
}

impl StepExpect {
    /// Stable name used in scenario files and run records.
    pub fn name(self) -> &'static str {
        match self {
            Self::Blocked => "blocked",
            Self::Detected => "detected",
            Self::Undetected => "undetected",
            Self::Masked => "masked",
            Self::Any => "any",
        }
    }

    /// Inverse of [`StepExpect::name`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "blocked" => Self::Blocked,
            "detected" => Self::Detected,
            "undetected" => Self::Undetected,
            "masked" => Self::Masked,
            "any" => Self::Any,
            _ => return None,
        })
    }
}

/// Windowed-metrics recording configuration (the optional `[metrics]`
/// scenario section). The engine records the full standard catalog at
/// the default window width when the section is absent; this spec only
/// *tunes* recording, it never changes simulated results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSpec {
    /// Window width in simulated cycles (`window-cycles`, > 0).
    pub window_cycles: u64,
    /// Series subset to record (`series`), or `None` for the full
    /// standard catalog.
    pub series: Option<Vec<String>>,
}

impl Default for MetricsSpec {
    fn default() -> Self {
        Self {
            window_cycles: DEFAULT_WINDOW_CYCLES,
            series: None,
        }
    }
}

impl MetricsSpec {
    /// The recorder configuration this spec describes.
    pub fn to_config(&self) -> MetricsConfig {
        MetricsConfig {
            window_cycles: self.window_cycles,
            enabled: self.series.clone(),
        }
    }
}

/// One attacker action plus its expected outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct StepSpec {
    /// The attack primitive to run.
    pub step: AttackStep,
    /// Expected outcome under this scenario's mode.
    pub expect: StepExpect,
}

/// A complete adversarial scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Unique scenario name (record key; corpus file stem by convention).
    pub name: String,
    /// One-line description for reports.
    pub description: String,
    /// Protection configuration the attack runs against.
    pub mode: Mode,
    /// Monitoring granularity (Hypernel mode).
    pub monitor: MonitorMode,
    /// Background workload operations interleaved before each attack
    /// step (seed-driven choice of operation).
    pub background_ops: u64,
    /// Upper bound, in cycles, on write→detection latency (checked by
    /// the `latency` oracle when a step is detected).
    pub latency_bound: Option<u64>,
    /// Override for the MBM snoop-FIFO capacity (overflow-pressure
    /// scenarios).
    pub fifo_capacity: Option<usize>,
    /// Override for the MBM translator drain budget per transaction.
    pub drain_budget: Option<usize>,
    /// The attacker program.
    pub steps: Vec<StepSpec>,
    /// Faults injected at the machine/MBM boundary.
    pub faults: FaultPlan,
    /// Windowed-metrics recording tuning (`[metrics]`), if the
    /// scenario overrides the defaults.
    pub metrics: Option<MetricsSpec>,
    /// Composed multi-domain system description (`[compose]` /
    /// `[[domain]]` / `[[channel]]` / `[[region]]`), lowered onto the
    /// kernel right after boot.
    pub compose: Option<ComposeDoc>,
}

impl Scenario {
    /// Starts a scenario running under `mode`.
    pub fn new(name: impl Into<String>, mode: Mode) -> Self {
        Self {
            name: name.into(),
            description: String::new(),
            mode,
            monitor: MonitorMode::SensitiveFields,
            background_ops: 0,
            latency_bound: None,
            fifo_capacity: None,
            drain_budget: None,
            steps: Vec::new(),
            faults: FaultPlan::new(),
            metrics: None,
            compose: None,
        }
    }

    /// Sets the one-line description.
    pub fn describe(mut self, text: impl Into<String>) -> Self {
        self.description = text.into();
        self
    }

    /// Appends an attack step with its expected outcome.
    pub fn step(mut self, step: AttackStep, expect: StepExpect) -> Self {
        self.steps.push(StepSpec { step, expect });
        self
    }

    /// Interleaves `n` seeded background operations before each step.
    pub fn background(mut self, n: u64) -> Self {
        self.background_ops = n;
        self
    }

    /// Bounds write→detection latency (cycles).
    pub fn latency_bound(mut self, cycles: u64) -> Self {
        self.latency_bound = Some(cycles);
        self
    }

    /// Shrinks the MBM snoop FIFO (overflow pressure).
    pub fn fifo_capacity(mut self, entries: usize) -> Self {
        self.fifo_capacity = Some(entries);
        self
    }

    /// Caps MBM translations per bus transaction (translator pressure).
    pub fn drain_budget(mut self, per_txn: usize) -> Self {
        self.drain_budget = Some(per_txn);
        self
    }

    /// Adds a fault to the injection schedule.
    pub fn fault(mut self, spec: FaultSpec) -> Self {
        self.faults = self.faults.with(spec);
        self
    }

    /// Tunes windowed-metrics recording (window width, series subset).
    pub fn metrics(mut self, spec: MetricsSpec) -> Self {
        self.metrics = Some(spec);
        self
    }

    /// Attaches a composed multi-domain system description, lowered
    /// right after boot.
    pub fn compose(mut self, doc: ComposeDoc) -> Self {
        self.compose = Some(doc);
        self
    }

    /// Loads a scenario from its TOML form.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] for syntax errors, unknown kinds or
    /// missing required fields.
    pub fn from_toml(input: &str) -> Result<Self, ScenarioError> {
        let doc = toml::parse(input).map_err(|e| ScenarioError::new(e.to_string()))?;
        Self::from_table(&doc)
    }

    fn from_table(doc: &TomlTable) -> Result<Self, ScenarioError> {
        let name = doc
            .get_str("name")
            .ok_or_else(|| ScenarioError::new("missing `name`"))?;
        let mode = match doc.get_str("mode").unwrap_or("hypernel") {
            "native" => Mode::Native,
            "kvm" => Mode::KvmGuest,
            "hypernel" => Mode::Hypernel,
            other => {
                return Err(ScenarioError::new(format!(
                    "unknown mode `{other}` (native | kvm | hypernel)"
                )))
            }
        };
        let mut scenario = Scenario::new(name, mode);
        scenario.description = doc.get_str("description").unwrap_or("").to_string();
        scenario.monitor = match doc.get_str("monitor").unwrap_or("sensitive-fields") {
            "sensitive-fields" => MonitorMode::SensitiveFields,
            "whole-object" => MonitorMode::WholeObject,
            other => {
                return Err(ScenarioError::new(format!(
                    "unknown monitor mode `{other}` (sensitive-fields | whole-object)"
                )))
            }
        };
        scenario.background_ops = doc.get_u64("background-ops").unwrap_or(0);
        scenario.latency_bound = doc.get_u64("latency-bound");
        scenario.fifo_capacity = doc.get_u64("fifo-capacity").map(|v| v as usize);
        scenario.drain_budget = doc.get_u64("drain-budget").map(|v| v as usize);

        if doc.array("step").is_empty() {
            return Err(ScenarioError::new("a scenario needs at least one [[step]]"));
        }
        for (i, t) in doc.array("step").iter().enumerate() {
            let spec = parse_step(t).map_err(|e| e.context(format!("step {}", i + 1)))?;
            scenario.steps.push(spec);
        }
        for (i, t) in doc.array("fault").iter().enumerate() {
            let spec = parse_fault(t).map_err(|e| e.context(format!("fault {}", i + 1)))?;
            scenario.faults = scenario.faults.with(spec);
        }
        if let Some(t) = doc.table("metrics") {
            scenario.metrics = Some(parse_metrics(t).map_err(|e| e.context("[metrics]"))?);
        }
        scenario.compose =
            ComposeDoc::from_doc(doc).map_err(|e| ScenarioError::new(e.to_string()))?;
        Ok(scenario)
    }

    /// Serializes the scenario back into its TOML form, emitting only
    /// keys the linter knows, so `explore` mutants land on disk
    /// ready-to-lint. Inverse of [`Scenario::from_toml`]:
    /// `from_toml(&s.to_toml())` reproduces `s` (round-trip tested).
    pub fn to_toml(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "name = {}", toml_str(&self.name));
        if !self.description.is_empty() {
            let _ = writeln!(out, "description = {}", toml_str(&self.description));
        }
        let mode = match self.mode {
            Mode::Native => "native",
            Mode::KvmGuest => "kvm",
            Mode::Hypernel => "hypernel",
        };
        let _ = writeln!(out, "mode = \"{mode}\"");
        if self.monitor == MonitorMode::WholeObject {
            let _ = writeln!(out, "monitor = \"whole-object\"");
        }
        if self.background_ops > 0 {
            let _ = writeln!(out, "background-ops = {}", self.background_ops);
        }
        if let Some(bound) = self.latency_bound {
            let _ = writeln!(out, "latency-bound = {bound}");
        }
        if let Some(capacity) = self.fifo_capacity {
            let _ = writeln!(out, "fifo-capacity = {capacity}");
        }
        if let Some(budget) = self.drain_budget {
            let _ = writeln!(out, "drain-budget = {budget}");
        }
        if let Some(metrics) = &self.metrics {
            let _ = writeln!(out, "\n[metrics]");
            let _ = writeln!(out, "window-cycles = {}", metrics.window_cycles);
            if let Some(series) = &metrics.series {
                let items: Vec<String> = series.iter().map(|s| toml_str(s)).collect();
                let _ = writeln!(out, "series = [{}]", items.join(", "));
            }
        }
        if let Some(compose) = &self.compose {
            let _ = write!(out, "\n{}", compose.to_toml());
        }
        for spec in &self.steps {
            let _ = writeln!(out, "\n[[step]]");
            let (kind, params): (&str, Vec<(&str, String)>) = match &spec.step {
                AttackStep::CredEscalation { pid } => {
                    ("cred-escalation", vec![("pid", pid.to_string())])
                }
                AttackStep::DentryHijack { path, rogue_inode } => (
                    "dentry-hijack",
                    vec![
                        ("path", toml_str(path)),
                        ("rogue-inode", rogue_inode.to_string()),
                    ],
                ),
                AttackStep::MapSecureRegion { pid } => {
                    ("map-secure-region", vec![("pid", pid.to_string())])
                }
                AttackStep::PtDirectWrite { pid, value } => (
                    "pt-direct-write",
                    vec![("pid", pid.to_string()), ("value", value.to_string())],
                ),
                AttackStep::TtbrRedirect => ("ttbr-redirect", vec![]),
                AttackStep::CodeInjection => ("code-injection", vec![]),
                AttackStep::TextPatch => ("text-patch", vec![]),
                AttackStep::AtraCred { pid } => ("atra-cred", vec![("pid", pid.to_string())]),
                AttackStep::AtraDentry { path } => ("atra-dentry", vec![("path", toml_str(path))]),
                AttackStep::DoubleMapCred { pid } => {
                    ("double-map-cred", vec![("pid", pid.to_string())])
                }
                AttackStep::CrossDomainCredTheft { attacker, victim } => (
                    "cross-domain-cred-theft",
                    vec![
                        ("attacker", toml_str(attacker)),
                        ("victim", toml_str(victim)),
                    ],
                ),
                AttackStep::SharedRegionToctou { region } => {
                    ("shared-region-toctou", vec![("region", toml_str(region))])
                }
                AttackStep::ChannelSpoof { channel } => {
                    ("channel-spoof", vec![("channel", toml_str(channel))])
                }
            };
            let _ = writeln!(out, "kind = \"{kind}\"");
            for (key, value) in params {
                let _ = writeln!(out, "{key} = {value}");
            }
            let _ = writeln!(out, "expect = \"{}\"", spec.expect.name());
        }
        for fault in &self.faults.specs {
            let _ = writeln!(out, "\n[[fault]]");
            let _ = writeln!(out, "kind = \"{}\"", fault.kind.name());
            let _ = writeln!(out, "at = {}", fault.at);
            if fault.count == u64::MAX {
                let _ = writeln!(out, "count = -1");
            } else {
                let _ = writeln!(out, "count = {}", fault.count);
            }
            match fault.kind {
                FaultKind::DelayIrq => {
                    let _ = writeln!(out, "steps = {}", fault.param);
                }
                FaultKind::FlipSnoopAddr => {
                    let _ = writeln!(out, "bit = {}", fault.param);
                }
                // `call` defaults to "any" (u64::MAX), which has no
                // literal TOML spelling — omit it to mean the same.
                FaultKind::LoseHypercall if fault.param != u64::MAX => {
                    let _ = writeln!(out, "call = {}", fault.param);
                }
                _ => {}
            }
        }
        out
    }
}

/// Quotes a TOML basic string. The crate's TOML subset has no escape
/// sequences (the parser rejects embedded quotes outright), so any
/// scenario that *parsed* serializes cleanly; an embedded `"` from a
/// Rust-built scenario is replaced to keep the output parseable.
fn toml_str(s: &str) -> String {
    format!("\"{}\"", s.replace('"', "'"))
}

fn parse_metrics(t: &TomlTable) -> Result<MetricsSpec, ScenarioError> {
    let mut spec = MetricsSpec::default();
    if let Some(w) = t.get("window-cycles") {
        spec.window_cycles = w
            .as_u64()
            .filter(|w| *w > 0)
            .ok_or_else(|| ScenarioError::new("`window-cycles` must be a positive integer"))?;
    }
    if let Some(v) = t.get("series") {
        let toml::TomlValue::Array(items) = v else {
            return Err(ScenarioError::new("`series` must be an array of strings"));
        };
        let series = items
            .iter()
            .map(|item| {
                item.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| ScenarioError::new("`series` must be an array of strings"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        spec.series = Some(series);
    }
    Ok(spec)
}

fn parse_step(t: &TomlTable) -> Result<StepSpec, ScenarioError> {
    let kind = t
        .get_str("kind")
        .ok_or_else(|| ScenarioError::new("missing `kind`"))?;
    let pid = || t.get_u64("pid").unwrap_or(1);
    let path = || t.get_str("path").unwrap_or("/bin/sh").to_string();
    let step = match kind {
        "cred-escalation" => AttackStep::CredEscalation { pid: pid() },
        "dentry-hijack" => AttackStep::DentryHijack {
            path: path(),
            rogue_inode: t.get_u64("rogue-inode").unwrap_or(0xBAD),
        },
        "map-secure-region" => AttackStep::MapSecureRegion { pid: pid() },
        "pt-direct-write" => AttackStep::PtDirectWrite {
            pid: pid(),
            value: t.get_u64("value").unwrap_or(0xBAD),
        },
        "ttbr-redirect" => AttackStep::TtbrRedirect,
        "code-injection" => AttackStep::CodeInjection,
        "text-patch" => AttackStep::TextPatch,
        "atra-cred" => AttackStep::AtraCred { pid: pid() },
        "atra-dentry" => AttackStep::AtraDentry { path: path() },
        "double-map-cred" => AttackStep::DoubleMapCred { pid: pid() },
        "cross-domain-cred-theft" => AttackStep::CrossDomainCredTheft {
            attacker: t.get_str("attacker").unwrap_or("client").to_string(),
            victim: t.get_str("victim").unwrap_or("server").to_string(),
        },
        "shared-region-toctou" => AttackStep::SharedRegionToctou {
            region: t.get_str("region").unwrap_or("shared").to_string(),
        },
        "channel-spoof" => AttackStep::ChannelSpoof {
            channel: t.get_str("channel").unwrap_or("chan").to_string(),
        },
        other => return Err(ScenarioError::new(format!("unknown step kind `{other}`"))),
    };
    let expect = match t.get_str("expect") {
        Some(text) => StepExpect::parse(text)
            .ok_or_else(|| ScenarioError::new(format!("unknown expect `{text}`")))?,
        None => StepExpect::Any,
    };
    Ok(StepSpec { step, expect })
}

fn parse_fault(t: &TomlTable) -> Result<FaultSpec, ScenarioError> {
    let kind_name = t
        .get_str("kind")
        .ok_or_else(|| ScenarioError::new("missing `kind`"))?;
    let kind = FaultKind::parse(kind_name)
        .ok_or_else(|| ScenarioError::new(format!("unknown fault kind `{kind_name}`")))?;
    let at = t.get_u64("at").unwrap_or(1);
    let count = t.get_u64("count").unwrap_or(1);
    // `count = -1` reads as "every occurrence from `at` on".
    let count = if t.get("count").and_then(crate::toml::TomlValue::as_int) == Some(-1) {
        u64::MAX
    } else {
        count
    };
    let param = match kind {
        FaultKind::DelayIrq => t.get_u64("steps").unwrap_or(1),
        FaultKind::FlipSnoopAddr => t.get_u64("bit").unwrap_or(12),
        FaultKind::LoseHypercall => t.get_u64("call").unwrap_or(u64::MAX),
        _ => 0,
    };
    Ok(FaultSpec {
        kind,
        at,
        count,
        param,
    })
}

/// A scenario parsing/validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// Human-readable cause, innermost first.
    pub message: String,
}

impl ScenarioError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    fn context(self, outer: impl fmt::Display) -> Self {
        Self {
            message: format!("{outer}: {}", self.message),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_toml_agree() {
        let toml = r#"
            name = "demo"
            description = "escalate then patch"
            mode = "hypernel"
            background-ops = 3
            latency-bound = 250000

            [[step]]
            kind = "cred-escalation"
            pid = 1
            expect = "detected"

            [[step]]
            kind = "text-patch"
            expect = "blocked"

            [[fault]]
            kind = "drop-irq"
            at = 1
            count = 1
        "#;
        let parsed = Scenario::from_toml(toml).expect("parses");
        let built = Scenario::new("demo", Mode::Hypernel)
            .describe("escalate then patch")
            .background(3)
            .latency_bound(250_000)
            .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Detected)
            .step(AttackStep::TextPatch, StepExpect::Blocked)
            .fault(FaultSpec::drop_irq(1, 1));
        assert_eq!(parsed, built);
    }

    #[test]
    fn fault_params_map_per_kind() {
        let toml = r#"
            name = "faults"
            [[step]]
            kind = "ttbr-redirect"
            [[fault]]
            kind = "delay-irq"
            at = 2
            count = -1
            steps = 7
            [[fault]]
            kind = "flip-snoop-addr"
            bit = 5
            [[fault]]
            kind = "lose-hypercall"
            call = 0x130
        "#;
        let s = Scenario::from_toml(toml).expect("parses");
        assert_eq!(s.faults.specs.len(), 3);
        assert_eq!(s.faults.specs[0], FaultSpec::delay_irq(2, u64::MAX, 7));
        assert_eq!(s.faults.specs[1], FaultSpec::flip_snoop_addr(1, 1, 5));
        assert_eq!(s.faults.specs[2], FaultSpec::lose_hypercall(1, 1, 0x130));
    }

    #[test]
    fn metrics_section_parses_and_rejects_bad_shapes() {
        let toml = r#"
            name = "m"
            [[step]]
            kind = "ttbr-redirect"
            [metrics]
            window-cycles = 20000
            series = ["hypercalls", "mbm-fifo-depth"]
        "#;
        let s = Scenario::from_toml(toml).expect("parses");
        let spec = s.metrics.expect("metrics spec");
        assert_eq!(spec.window_cycles, 20_000);
        assert_eq!(
            spec.series.as_deref(),
            Some(&["hypercalls".to_string(), "mbm-fifo-depth".to_string()][..])
        );
        assert_eq!(spec.to_config().window_cycles, 20_000);

        // Absent section → None; engine falls back to defaults.
        let bare = Scenario::from_toml("name = \"x\"\n[[step]]\nkind = \"text-patch\"").unwrap();
        assert_eq!(bare.metrics, None);

        for bad in [
            "[metrics]\nwindow-cycles = 0",
            "[metrics]\nwindow-cycles = \"wide\"",
            "[metrics]\nseries = 7",
            "[metrics]\nseries = [1, 2]",
        ] {
            let text = format!("name = \"x\"\n[[step]]\nkind = \"text-patch\"\n{bad}");
            let e = Scenario::from_toml(&text).unwrap_err();
            assert!(e.message.contains("[metrics]"), "{e}");
        }
    }

    #[test]
    fn to_toml_round_trips() {
        let full = Scenario::new("round-trip", Mode::Hypernel)
            .describe("every knob at once")
            .background(5)
            .latency_bound(250_000)
            .fifo_capacity(4)
            .drain_budget(1)
            .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Detected)
            .step(
                AttackStep::DentryHijack {
                    path: "/bin/sh".to_string(),
                    rogue_inode: 0xBAD,
                },
                StepExpect::Masked,
            )
            .step(AttackStep::TtbrRedirect, StepExpect::Blocked)
            .fault(FaultSpec::delay_irq(2, u64::MAX, 7))
            .fault(FaultSpec::lose_hypercall(1, 1, u64::MAX))
            .metrics(MetricsSpec {
                window_cycles: 20_000,
                series: Some(vec!["hypercalls".to_string()]),
            });
        let reparsed = Scenario::from_toml(&full.to_toml()).expect("round-trips");
        assert_eq!(reparsed, full);

        // Every shipped corpus scenario must survive the round trip too.
        for entry in std::fs::read_dir("../../corpus").expect("corpus dir") {
            let path = entry.expect("entry").path();
            if path.extension().and_then(|e| e.to_str()) != Some("toml") {
                continue;
            }
            let source = std::fs::read_to_string(&path).expect("readable");
            let loaded = Scenario::from_toml(&source).expect("corpus parses");
            let again = Scenario::from_toml(&loaded.to_toml())
                .unwrap_or_else(|e| panic!("{} re-parses: {e}", path.display()));
            assert_eq!(again, loaded, "{} round-trips", path.display());
        }
    }

    #[test]
    fn rejects_unknowns_with_context() {
        assert!(Scenario::from_toml("name = \"x\"").is_err(), "no steps");
        let e =
            Scenario::from_toml("name = \"x\"\n[[step]]\nkind = \"warp-core-breach\"").unwrap_err();
        assert!(e.message.contains("step 1"), "{e}");
        assert!(e.message.contains("warp-core-breach"));
        let e =
            Scenario::from_toml("name = \"x\"\nmode = \"xen\"\n[[step]]\nkind = \"text-patch\"")
                .unwrap_err();
        assert!(e.message.contains("xen"));
    }
}
