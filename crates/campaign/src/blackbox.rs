//! The flight recorder: a bounded post-mortem snapshot of a failing run.
//!
//! Every engine run keeps an always-on fixed-size ring of recent
//! telemetry events (cheap: the ring holds a few hundred events and
//! recording never changes simulated results). When a run fails — an
//! oracle the scenario did not declare fires, which includes unexpected
//! audit findings — the engine assembles the ring plus a bounded
//! machine-state snapshot into a `blackbox.json` document: mode,
//! exception level, translation roots, MBM statistics, the tail of the
//! fault-hit log, pending interrupt lines, the run's windowed metrics,
//! and the violations themselves. `hypernel-analyze timeline` ingests
//! it, so "oracle X failed at seed 17" arrives as a self-contained
//! artifact instead of a repro recipe.
//!
//! Like every campaign artifact the document is deterministic: all
//! captured state is simulated, so the same `(scenario, seed)` failure
//! dumps byte-identical JSON.

use hypernel::System;
use hypernel_machine::regs::SysReg;
use hypernel_machine::FaultHit;
use hypernel_mbm::Mbm;
use hypernel_telemetry::export::event_to_json;
use hypernel_telemetry::json::Json;
use hypernel_telemetry::series::MetricsDoc;

use crate::record::Violation;
use crate::scenario::Scenario;

/// Schema version of the blackbox document.
pub const BLACKBOX_SCHEMA: u64 = 1;

/// `kind` tag of the blackbox document.
pub const BLACKBOX_KIND: &str = "hypernel-blackbox";

/// Telemetry events the engine's always-on flight ring retains.
pub const FLIGHT_RING_CAPACITY: usize = 512;

/// Fault-log entries kept in the dump (the most recent ones).
pub const FAULT_LOG_TAIL: usize = 32;

/// Assembles the blackbox document from a finished (failed) run.
///
/// `reason` names the trigger ("unexpected `audit` violation", "fault
/// minimization reproduced the gap", ...). `fault_log` is the full
/// chronological hit log; only the last [`FAULT_LOG_TAIL`] entries are
/// embedded. `metrics` embeds the run's windowed series so the dump is
/// self-contained for `hypernel-analyze timeline`.
pub fn capture(
    sys: &System,
    scenario: &Scenario,
    seed: u64,
    reason: &str,
    violations: &[Violation],
    fault_log: &[FaultHit],
    metrics: Option<&MetricsDoc>,
) -> Json {
    let machine = sys.machine();
    let regs = machine.regs();
    let stats = machine.stats();

    let mut state = vec![
        ("el", Json::str(&machine.el().to_string())),
        ("cycles", Json::UInt(sys.cycles())),
        ("ttbr0_el1", Json::UInt(regs.read(SysReg::TTBR0_EL1))),
        ("ttbr1_el1", Json::UInt(regs.read(SysReg::TTBR1_EL1))),
        ("vttbr_el2", Json::UInt(regs.read(SysReg::VTTBR_EL2))),
        ("hcr_el2", Json::UInt(regs.read(SysReg::HCR_EL2))),
        (
            "pending_irqs",
            Json::Array(
                machine
                    .irq()
                    .pending_lines()
                    .iter()
                    .map(|line| Json::UInt(u64::from(line.0)))
                    .collect(),
            ),
        ),
        (
            "irqs_raised_total",
            Json::UInt(machine.irq().raised_total()),
        ),
    ];
    state.push((
        "counters",
        Json::obj(vec![
            ("hypercalls", Json::UInt(stats.hypercalls)),
            ("sysreg_traps", Json::UInt(stats.sysreg_traps)),
            ("stage2_faults", Json::UInt(stats.stage2_faults)),
            ("irqs_delivered", Json::UInt(stats.irqs_delivered)),
        ]),
    ));

    let mut fields = vec![
        ("schema", Json::UInt(BLACKBOX_SCHEMA)),
        ("kind", Json::str(BLACKBOX_KIND)),
        ("scenario", Json::str(&scenario.name)),
        ("mode", Json::str(&scenario.mode.to_string())),
        ("seed", Json::UInt(seed)),
        ("reason", Json::str(reason)),
        ("state", Json::obj(state)),
    ];

    if let Some(mbm) = machine.bus().snooper::<Mbm>() {
        let s = mbm.stats();
        fields.push((
            "mbm",
            Json::obj(vec![
                ("bus_writes_seen", Json::UInt(s.bus_writes_seen)),
                ("captured", Json::UInt(s.captured)),
                ("events_matched", Json::UInt(s.events_matched)),
                ("irqs_raised", Json::UInt(s.irqs_raised)),
                ("fifo_dropped", Json::UInt(s.fifo_dropped)),
                ("fifo_depth", Json::UInt(mbm.fifo_len() as u64)),
                (
                    "fifo_high_water",
                    Json::UInt(mbm.fifo_high_watermark() as u64),
                ),
                ("secure_alarms", Json::UInt(s.secure_alarms)),
                ("lookup_divergences", Json::UInt(s.lookup_divergences)),
            ]),
        ));
    }

    let tail_start = fault_log.len().saturating_sub(FAULT_LOG_TAIL);
    fields.push(("fault_log_total", Json::UInt(fault_log.len() as u64)));
    fields.push((
        "fault_log_tail",
        Json::Array(
            fault_log[tail_start..]
                .iter()
                .map(|hit| {
                    Json::obj(vec![
                        ("kind", Json::str(hit.kind.name())),
                        ("site_index", Json::UInt(hit.site_index)),
                        ("info", Json::UInt(hit.info)),
                    ])
                })
                .collect(),
        ),
    ));

    fields.push((
        "violations",
        Json::Array(
            violations
                .iter()
                .map(|v| {
                    let mut f = vec![("oracle", Json::str(v.oracle))];
                    if let Some(step) = v.step {
                        f.push(("step", Json::UInt(step as u64)));
                    }
                    f.push(("detail", Json::str(&v.detail)));
                    f.push(("expected", Json::Bool(v.expected)));
                    Json::obj(f)
                })
                .collect(),
        ),
    ));

    let events = sys.telemetry_events().unwrap_or_default();
    fields.push((
        "events_dropped",
        Json::UInt(sys.telemetry_dropped().unwrap_or(0)),
    ));
    fields.push((
        "recent_events",
        Json::Array(events.iter().map(event_to_json).collect()),
    ));

    if let Some(doc) = metrics {
        fields.push(("metrics_summary", doc.summary_json()));
        fields.push(("metrics_jsonl", Json::str(&doc.to_jsonl())));
    }

    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use hypernel::Mode;
    use hypernel_kernel::AttackStep;

    #[test]
    fn capture_produces_a_parseable_self_contained_document() {
        let scenario = Scenario::new("bb-unit", Mode::Hypernel).step(
            AttackStep::CredEscalation { pid: 1 },
            crate::StepExpect::Detected,
        );
        let mut sys = engine::boot_system(&scenario).expect("boot");
        sys.enable_telemetry(FLIGHT_RING_CAPACITY);
        {
            let (kernel, machine, hyp) = sys.parts();
            kernel
                .run_attack_step(machine, hyp, &scenario.steps[0].step)
                .expect("step");
        }
        sys.service_interrupts().expect("service");
        let violations = vec![Violation {
            oracle: "detection",
            step: Some(0),
            detail: "unit trigger".to_string(),
            expected: false,
        }];
        let doc = capture(&sys, &scenario, 9, "unit test", &violations, &[], None);
        let text = doc.to_string();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(
            parsed.get("kind").and_then(Json::as_str),
            Some(BLACKBOX_KIND)
        );
        assert_eq!(parsed.get("seed").and_then(Json::as_u64), Some(9));
        assert!(parsed
            .get("state")
            .and_then(|s| s.get("ttbr1_el1"))
            .is_some());
        assert!(parsed.get("mbm").is_some(), "hypernel mode embeds MBM");
        let events = parsed
            .get("recent_events")
            .and_then(Json::as_array)
            .expect("events");
        assert!(!events.is_empty(), "flight ring captured the attack");
        assert!(events.len() <= FLIGHT_RING_CAPACITY);
    }

    #[test]
    fn capture_is_deterministic() {
        let scenario = Scenario::new("bb-det", Mode::Hypernel)
            .step(AttackStep::TextPatch, crate::StepExpect::Blocked);
        let dump = |()| {
            let mut sys = engine::boot_system(&scenario).expect("boot");
            sys.enable_telemetry(FLIGHT_RING_CAPACITY);
            {
                let (kernel, machine, hyp) = sys.parts();
                let _ = kernel.run_attack_step(machine, hyp, &scenario.steps[0].step);
            }
            capture(&sys, &scenario, 4, "det", &[], &[], None).to_string()
        };
        assert_eq!(dump(()), dump(()));
    }
}
