//! Invariant oracles: the pass/fail judgment after every run.
//!
//! Five oracles inspect the finished run:
//!
//! - **outcomes** — each step's blocked/succeeded result matches the
//!   scenario's [`StepExpect`].
//! - **wx** — the Hypersec audit holds: W⊕X over kernel mappings and
//!   no stage-1 mapping targets the secure region. One violation per
//!   audit finding.
//! - **detection** — every monitored write that actually happened was
//!   detected. A gap is *expected* (recorded but non-fatal) when the
//!   scenario declared the masking condition: a `Masked` step under a
//!   fault plan, or FIFO-overflow pressure that provably swallowed the
//!   capture (`first_dropped_addr`).
//! - **latency** — detected steps landed within the scenario's
//!   `latency_bound`.
//! - **audit** — the whole-system static audit
//!   ([`hypernel_audit::audit_system`]) over the final state. Under
//!   Hypernel any static finding is an unexpected violation; under
//!   Native/KVM findings merely record what the attack achieved (the
//!   unprotected baseline is *supposed* to be corruptible). A
//!   static-vs-incremental differential disagreement or an MBM
//!   watch-bitmap lookup divergence is **always** unexpected — those
//!   are verifier/device bugs, not attack outcomes.
//!
//! Expected violations keep the run green while still appearing in the
//! record, so `minimize` has a stable target and reports stay honest.

use hypernel::Mode;
use hypernel_audit::StaticAuditReport;
use hypernel_hypersec::AuditReport;
use hypernel_machine::FaultStats;
use hypernel_mbm::MbmStats;

use crate::record::{StepRecord, Violation};
use crate::scenario::{Scenario, StepExpect};

/// Everything the oracles look at.
pub struct OracleInput<'a> {
    /// The scenario that ran (expectations, declared faults, bounds).
    pub scenario: &'a Scenario,
    /// Per-step results in program order.
    pub steps: &'a [StepRecord],
    /// Hypersec audit of the final state (Hypernel mode).
    pub audit: Option<&'a AuditReport>,
    /// Whole-system static audit of the final state (all modes).
    pub static_audit: Option<&'a StaticAuditReport>,
    /// MBM counters at the end of the run.
    pub mbm: Option<MbmStats>,
    /// Injected-fault counters.
    pub faults: Option<FaultStats>,
}

fn violation(
    oracle: &'static str,
    step: Option<usize>,
    detail: impl Into<String>,
    expected: bool,
) -> Violation {
    Violation {
        oracle,
        step,
        detail: detail.into(),
        expected,
    }
}

/// Did the scenario declare FIFO-overflow pressure — a shrunken FIFO, a
/// starved drain budget, or translator-stall faults?
fn declared_overflow_pressure(scenario: &Scenario, faults: Option<FaultStats>) -> bool {
    scenario.fifo_capacity.is_some()
        || scenario.drain_budget.is_some()
        || faults.is_some_and(|f| f.translator_stalls > 0)
}

fn check_outcomes(input: &OracleInput<'_>, out: &mut Vec<Violation>) {
    for (i, (spec, step)) in input.scenario.steps.iter().zip(input.steps).enumerate() {
        let ok = match spec.expect {
            StepExpect::Blocked => step.blocked,
            // Detected / Undetected / Masked all require the write to
            // actually land; what happens next is the detection
            // oracle's business.
            StepExpect::Detected | StepExpect::Undetected | StepExpect::Masked => !step.blocked,
            StepExpect::Any => true,
        };
        if !ok {
            out.push(violation(
                "outcomes",
                Some(i),
                format!(
                    "step `{}` expected {} but was {}",
                    step.name,
                    spec.expect.name(),
                    step.outcome
                ),
                false,
            ));
        }
    }
}

fn check_wx(input: &OracleInput<'_>, out: &mut Vec<Violation>) {
    let Some(audit) = input.audit else {
        return;
    };
    for finding in &audit.violations {
        out.push(violation("wx", None, finding.clone(), false));
    }
}

fn check_detection(input: &OracleInput<'_>, out: &mut Vec<Violation>) {
    // Only meaningful when something is watching.
    if input.mbm.is_none() {
        // Native / KVM: `Undetected` is the expectation and there is no
        // monitor whose silence could be a bug. But a `Detected`
        // expectation in a monitor-less mode is a scenario bug worth
        // flagging.
        for (i, spec) in input.scenario.steps.iter().enumerate() {
            if spec.expect == StepExpect::Detected {
                out.push(violation(
                    "detection",
                    Some(i),
                    "scenario expects detection but the mode has no monitor",
                    false,
                ));
            }
        }
        return;
    }
    let pressure = declared_overflow_pressure(input.scenario, input.faults);
    let overflowed = input
        .mbm
        .is_some_and(|m| m.fifo_dropped > 0 && m.first_dropped_addr.is_some());
    let has_faults = !input.scenario.faults.is_empty();
    for (i, (spec, step)) in input.scenario.steps.iter().zip(input.steps).enumerate() {
        let Some((base, len)) = step.monitored else {
            continue;
        };
        if step.blocked {
            continue;
        }
        match spec.expect {
            // A monitored write the scenario claims goes unseen: if the
            // monitor *did* see it, the scenario is wrong.
            StepExpect::Undetected if step.detections > 0 => {
                out.push(violation(
                    "detection",
                    Some(i),
                    format!(
                        "step `{}` expected to evade detection but was detected",
                        step.name
                    ),
                    false,
                ));
            }
            // Undetected with zero detections is exactly what the
            // scenario promised.
            StepExpect::Undetected => {}
            _ if step.detections == 0 => {
                // A surviving watched-word write that nobody reported.
                // Decide whether the scenario declared the mask.
                if spec.expect == StepExpect::Masked && has_faults {
                    out.push(violation(
                        "detection",
                        Some(i),
                        format!(
                            "step `{}` write to [{:#x}; {}] masked by declared fault plan",
                            step.name, base, len
                        ),
                        true,
                    ));
                } else if pressure && overflowed {
                    let addr = input
                        .mbm
                        .and_then(|m| m.first_dropped_addr)
                        .expect("overflowed implies Some");
                    out.push(violation(
                        "detection",
                        Some(i),
                        format!(
                            "step `{}` missed by design (overflow): first capture dropped at {:#x}",
                            step.name,
                            addr.raw()
                        ),
                        true,
                    ));
                } else {
                    out.push(violation(
                        "detection",
                        Some(i),
                        format!(
                            "step `{}` wrote watched span [{:#x}; {}] undetected",
                            step.name, base, len
                        ),
                        false,
                    ));
                }
            }
            _ => {}
        }
    }
}

fn check_latency(input: &OracleInput<'_>, out: &mut Vec<Violation>) {
    let Some(bound) = input.scenario.latency_bound else {
        return;
    };
    for (i, step) in input.steps.iter().enumerate() {
        if step.detections == 0 {
            continue;
        }
        if let Some(latency) = step.latency {
            if latency > bound {
                out.push(violation(
                    "latency",
                    Some(i),
                    format!(
                        "step `{}` detection latency {latency} cycles exceeds bound {bound}",
                        step.name
                    ),
                    false,
                ));
            }
        }
    }
}

fn check_audit(input: &OracleInput<'_>, out: &mut Vec<Violation>) {
    // A watch-bitmap lookup divergence means the MBM answered a watched
    // query from stale bits — a device-level desync, never an attack
    // outcome, so it is unexpected in every mode.
    if let Some(divergences) = input.mbm.map(|m| m.lookup_divergences) {
        if divergences > 0 {
            out.push(violation(
                "audit",
                None,
                format!("MBM watch-bitmap desync: {divergences} lookup divergence(s)"),
                false,
            ));
        }
    }
    let Some(report) = input.static_audit else {
        return;
    };
    // Under Hypernel the protected invariants must hold, full stop.
    // Under Native/KVM a successful attack *should* leave findings —
    // record them, expected.
    let protected = input.scenario.mode == Mode::Hypernel;
    for finding in &report.findings {
        out.push(violation("audit", None, finding.to_string(), !protected));
    }
    if let Some(diff) = &report.differential {
        for disagreement in &diff.disagreements {
            out.push(violation(
                "audit",
                None,
                format!("static/incremental disagreement: {disagreement}"),
                false,
            ));
        }
    }
    if let Some(sanitizer) = &report.sanitizer {
        for v in &sanitizer.violations {
            out.push(violation(
                "audit",
                None,
                format!(
                    "ownership sanitizer: {} wrote {:#x} (page tagged {})",
                    v.writer.name(),
                    v.pa.raw(),
                    v.tag.name()
                ),
                !protected,
            ));
        }
    }
}

/// Runs all five oracles and returns every violation, expected ones
/// included.
pub fn evaluate(input: &OracleInput<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    check_outcomes(input, &mut out);
    check_wx(input, &mut out);
    check_detection(input, &mut out);
    check_latency(input, &mut out);
    check_audit(input, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use hypernel::Mode;
    use hypernel_kernel::AttackStep;
    use hypernel_machine::{FaultPlan, FaultSpec};

    fn step_record(blocked: bool, detections: u64, latency: u64) -> StepRecord {
        StepRecord {
            name: "cred-escalation".to_string(),
            outcome: if blocked {
                "blocked".to_string()
            } else {
                "succeeded".to_string()
            },
            blocked,
            monitored: Some((0x4000, 64)),
            detections,
            latency: Some(latency),
        }
    }

    fn mbm_stats(dropped: u64) -> MbmStats {
        MbmStats {
            fifo_dropped: dropped,
            first_dropped_addr: (dropped > 0)
                .then(|| hypernel_machine::addr::PhysAddr::new(0x4000)),
            ..MbmStats::default()
        }
    }

    fn scenario(expect: StepExpect) -> Scenario {
        Scenario::new("t", Mode::Hypernel).step(AttackStep::CredEscalation { pid: 1 }, expect)
    }

    #[test]
    fn detected_write_with_latency_in_bound_is_clean() {
        let s = scenario(StepExpect::Detected).latency_bound(1_000);
        let v = evaluate(&OracleInput {
            scenario: &s,
            steps: &[step_record(false, 1, 500)],
            audit: None,
            static_audit: None,
            mbm: Some(mbm_stats(0)),
            faults: None,
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn undetected_write_is_unexpected_without_declared_mask() {
        let s = scenario(StepExpect::Detected);
        let v = evaluate(&OracleInput {
            scenario: &s,
            steps: &[step_record(false, 0, 500)],
            audit: None,
            static_audit: None,
            mbm: Some(mbm_stats(0)),
            faults: None,
        });
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, "detection");
        assert!(!v[0].expected);
    }

    #[test]
    fn masked_step_under_fault_plan_is_expected() {
        let mut s = scenario(StepExpect::Masked);
        s.faults = FaultPlan::new().with(FaultSpec::drop_irq(1, u64::MAX));
        let v = evaluate(&OracleInput {
            scenario: &s,
            steps: &[step_record(false, 0, 500)],
            audit: None,
            static_audit: None,
            mbm: Some(mbm_stats(0)),
            faults: None,
        });
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, "detection");
        assert!(v[0].expected, "declared mask must not fail the run");
    }

    #[test]
    fn overflow_pressure_excuses_the_miss() {
        let mut s = scenario(StepExpect::Detected);
        s.fifo_capacity = Some(2);
        let v = evaluate(&OracleInput {
            scenario: &s,
            steps: &[step_record(false, 0, 500)],
            audit: None,
            static_audit: None,
            mbm: Some(mbm_stats(3)),
            faults: None,
        });
        assert_eq!(v.len(), 1);
        assert!(v[0].expected);
        assert!(v[0].detail.contains("overflow"));
    }

    #[test]
    fn wrong_outcome_latency_excess_and_audit_findings_flag() {
        let s = scenario(StepExpect::Blocked).latency_bound(100);
        let audit = AuditReport {
            tables_checked: 1,
            leaves_checked: 1,
            regions_checked: 1,
            violations: vec!["writable+executable leaf".to_string()],
        };
        let v = evaluate(&OracleInput {
            scenario: &s,
            steps: &[step_record(false, 1, 500)],
            audit: Some(&audit),
            static_audit: None,
            mbm: Some(mbm_stats(0)),
            faults: None,
        });
        let oracles: Vec<&str> = v.iter().map(|x| x.oracle).collect();
        assert!(oracles.contains(&"outcomes"));
        assert!(oracles.contains(&"wx"));
        assert!(oracles.contains(&"latency"));
        assert!(v.iter().all(|x| !x.expected));
    }

    fn audit_report_with_finding() -> StaticAuditReport {
        let mut report = StaticAuditReport::default();
        report.finding(
            hypernel_audit::CheckKind::WxMapping,
            "writable+executable leaf",
            vec![],
        );
        report
    }

    #[test]
    fn static_finding_is_unexpected_under_hypernel_expected_under_native() {
        let report = audit_report_with_finding();
        for (mode, expected) in [(Mode::Hypernel, false), (Mode::Native, true)] {
            let s = Scenario::new("t", mode)
                .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Any);
            let v = evaluate(&OracleInput {
                scenario: &s,
                steps: &[step_record(false, 1, 10)],
                audit: None,
                static_audit: Some(&report),
                mbm: None,
                faults: None,
            });
            let audit: Vec<_> = v.iter().filter(|x| x.oracle == "audit").collect();
            assert_eq!(audit.len(), 1, "{mode:?}");
            assert_eq!(audit[0].expected, expected, "{mode:?}");
        }
    }

    #[test]
    fn differential_disagreement_is_always_unexpected() {
        let report = StaticAuditReport {
            differential: Some(hypernel_audit::DifferentialReport {
                static_findings: 1,
                incremental_violations: vec![],
                disagreements: vec!["static-only: [wx-mapping] leaf".to_string()],
            }),
            ..Default::default()
        };
        let s = scenario(StepExpect::Any);
        let v = evaluate(&OracleInput {
            scenario: &s,
            steps: &[step_record(false, 1, 10)],
            audit: None,
            static_audit: Some(&report),
            mbm: Some(mbm_stats(0)),
            faults: None,
        });
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, "audit");
        assert!(!v[0].expected, "verifier bugs are never declared");
        assert!(v[0].detail.contains("disagreement"));
    }

    #[test]
    fn bitmap_lookup_divergence_is_always_unexpected() {
        let s = scenario(StepExpect::Detected);
        let mut mbm = mbm_stats(0);
        mbm.lookup_divergences = 2;
        let v = evaluate(&OracleInput {
            scenario: &s,
            steps: &[step_record(false, 1, 10)],
            audit: None,
            static_audit: None,
            mbm: Some(mbm),
            faults: None,
        });
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, "audit");
        assert!(!v[0].expected);
        assert!(v[0].detail.contains("desync"));
    }

    #[test]
    fn native_mode_expecting_detection_is_a_scenario_bug() {
        let s = Scenario::new("t", Mode::Native)
            .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Detected);
        let v = evaluate(&OracleInput {
            scenario: &s,
            steps: &[step_record(false, 0, 10)],
            audit: None,
            static_audit: None,
            mbm: None,
            faults: None,
        });
        assert_eq!(v.len(), 1);
        assert!(!v[0].expected);
    }
}
