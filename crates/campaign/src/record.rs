//! Run records: the machine-readable artifact of one `(scenario, seed)`
//! execution, and campaign-level summaries.
//!
//! Records are fully deterministic — field order is fixed, there are no
//! timestamps, and every number derives from the simulated machine — so
//! the same `(scenario, seed)` always serializes to byte-identical
//! JSON. `campaign.jsonl` is one record per line, sorted by
//! `(scenario, seed)`.

use hypernel_machine::FaultStats;
use hypernel_mbm::MbmStats;
use hypernel_telemetry::json::Json;
use hypernel_telemetry::series::MetricsDoc;

use crate::coverage::CoverageMap;

/// Schema version stamped into every campaign record.
pub const CAMPAIGN_SCHEMA: u64 = 1;

/// `kind` tag of one run record.
pub const RECORD_KIND: &str = "hypernel-campaign-run";

/// `kind` tag of the campaign summary artifact.
pub const SUMMARY_KIND: &str = "hypernel-campaign-summary";

/// An oracle violation observed in one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which oracle flagged it (`outcomes` | `wx` | `detection` |
    /// `latency` | `audit`).
    pub oracle: &'static str,
    /// 0-based attack-step index the violation anchors to, if any.
    pub step: Option<usize>,
    /// Human-readable specifics.
    pub detail: String,
    /// `true` when the scenario *declared* this violation (a masked
    /// detection gap, overflow pressure): the record still carries it,
    /// but it does not fail the run.
    pub expected: bool,
}

impl Violation {
    fn to_json(&self) -> Json {
        let mut fields = vec![("oracle", Json::str(self.oracle))];
        if let Some(step) = self.step {
            fields.push(("step", Json::UInt(step as u64)));
        }
        fields.push(("detail", Json::str(&self.detail)));
        fields.push(("expected", Json::Bool(self.expected)));
        Json::obj(fields)
    }
}

/// What one attack step did and what the pipeline saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepRecord {
    /// Step kind name (`cred-escalation`, ...).
    pub name: String,
    /// Outcome display string (`succeeded` or `blocked: <why>`).
    pub outcome: String,
    /// `true` when the operation was refused.
    pub blocked: bool,
    /// Monitored physical span `(base, len)` the step wrote, if any.
    pub monitored: Option<(u64, u64)>,
    /// Number of detections whose address falls in the monitored span.
    pub detections: u64,
    /// Cycles from step start to the end of the service pass that
    /// followed it — the observed write→detection latency when
    /// `detections > 0`.
    pub latency: Option<u64>,
}

impl StepRecord {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", Json::str(&self.name)),
            ("outcome", Json::str(&self.outcome)),
            ("blocked", Json::Bool(self.blocked)),
        ];
        if let Some((base, len)) = self.monitored {
            fields.push((
                "monitored",
                Json::obj(vec![("base", Json::UInt(base)), ("len", Json::UInt(len))]),
            ));
        }
        fields.push(("detections", Json::UInt(self.detections)));
        if let Some(latency) = self.latency {
            fields.push(("latency", Json::UInt(latency)));
        }
        Json::obj(fields)
    }
}

/// Condensed static-audit section of a run record. The full report
/// (chains, per-finding detail) is the `hypernel-audit` artifact; the
/// run record keeps just enough to diff and to anchor the `audit`
/// oracle's violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditRecord {
    /// Translation roots the static pass walked.
    pub roots: u64,
    /// Distinct table pages visited.
    pub tables: u64,
    /// Leaves checked.
    pub leaves: u64,
    /// Invariant findings (all of them, expected or not).
    pub findings: u64,
    /// Static-vs-incremental verdict; `None` when the differential did
    /// not run (non-Hypernel modes).
    pub differential_agrees: Option<bool>,
}

impl AuditRecord {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("roots", Json::UInt(self.roots)),
            ("tables", Json::UInt(self.tables)),
            ("leaves", Json::UInt(self.leaves)),
            ("findings", Json::UInt(self.findings)),
            (
                "differential_agrees",
                self.differential_agrees.map_or(Json::Null, Json::Bool),
            ),
        ])
    }
}

/// The artifact of one `(scenario, seed)` run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Scenario name.
    pub scenario: String,
    /// Protection mode display string.
    pub mode: String,
    /// The seed driving workload interleaving.
    pub seed: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Per-step results, in program order.
    pub steps: Vec<StepRecord>,
    /// Total detections Hypersec dispatched.
    pub detections_total: u64,
    /// MBM statistics (Hypernel mode).
    pub mbm: Option<MbmStats>,
    /// Injected-fault counters (when the scenario declares faults).
    pub faults: Option<FaultStats>,
    /// Static whole-system audit of the final state.
    pub audit: Option<AuditRecord>,
    /// Oracle violations, expected and not.
    pub violations: Vec<Violation>,
    /// `true` iff every violation was declared by the scenario.
    pub passed: bool,
    /// Full windowed metrics for the run. Carried in memory for
    /// `--metrics` export; [`RunRecord::to_json`] stamps only the
    /// bounded summary (totals and maxima per series).
    pub metrics: Option<MetricsDoc>,
    /// Pre-serialized flight-recorder dump, present when the run
    /// failed. Carried in memory for `--blackbox` export; never part
    /// of the record JSON.
    pub blackbox: Option<String>,
    /// Structural coverage of the run. Carried in memory for
    /// `--coverage` atlas merging; never part of the record JSON (the
    /// atlas is its own artifact).
    pub coverage: Option<CoverageMap>,
}

impl RunRecord {
    /// Serializes the record as one deterministic JSON object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema", Json::UInt(CAMPAIGN_SCHEMA)),
            ("kind", Json::str(RECORD_KIND)),
            ("scenario", Json::str(&self.scenario)),
            ("mode", Json::str(&self.mode)),
            ("seed", Json::UInt(self.seed)),
            ("cycles", Json::UInt(self.cycles)),
            (
                "steps",
                Json::Array(self.steps.iter().map(StepRecord::to_json).collect()),
            ),
            ("detections_total", Json::UInt(self.detections_total)),
        ];
        if let Some(mbm) = self.mbm {
            let mut mbm_fields = vec![
                ("events_matched", Json::UInt(mbm.events_matched)),
                ("irqs_raised", Json::UInt(mbm.irqs_raised)),
                ("fifo_dropped", Json::UInt(mbm.fifo_dropped)),
            ];
            match mbm.first_dropped_addr {
                Some(addr) => mbm_fields.push(("first_dropped_addr", Json::UInt(addr.raw()))),
                None => mbm_fields.push(("first_dropped_addr", Json::Null)),
            }
            fields.push(("mbm", Json::obj(mbm_fields)));
        }
        if let Some(f) = self.faults {
            fields.push(("faults", fault_counters_json(&f)));
        }
        if let Some(audit) = self.audit {
            fields.push(("audit", audit.to_json()));
        }
        if let Some(metrics) = &self.metrics {
            fields.push(("metrics", metrics.summary_json()));
        }
        fields.push((
            "violations",
            Json::Array(self.violations.iter().map(Violation::to_json).collect()),
        ));
        fields.push(("passed", Json::Bool(self.passed)));
        Json::obj(fields)
    }

    /// The violations the scenario did *not* declare — what fails a run.
    pub fn unexpected_violations(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| !v.expected)
    }
}

/// Serializes the per-kind injected-fault counters as one JSON object
/// — the single source of the artifact field names, shared by run
/// records and summary rows.
fn fault_counters_json(f: &FaultStats) -> Json {
    Json::Object(
        f.counters()
            .iter()
            .map(|(name, n)| (name.to_string(), Json::UInt(*n)))
            .collect(),
    )
}

/// Per-scenario aggregation of a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSummary {
    /// Scenario name.
    pub scenario: String,
    /// Runs executed.
    pub runs: u64,
    /// Runs whose violations were all declared.
    pub passed: u64,
    /// Violations the scenario declared (masked gaps etc.).
    pub expected_violations: u64,
    /// Violations nobody declared — real failures.
    pub unexpected_violations: u64,
    /// Largest observed write→detection latency (cycles).
    pub max_latency: Option<u64>,
    /// Injected-fault hits summed over the scenario's runs (the
    /// injector's per-fault counters, surfaced into artifacts).
    pub faults: FaultStats,
}

/// Aggregates records (already sorted by scenario) into per-scenario
/// rows plus campaign totals.
pub fn summarize(records: &[RunRecord]) -> Vec<ScenarioSummary> {
    let mut rows: Vec<ScenarioSummary> = Vec::new();
    for r in records {
        if rows.last().map(|row| row.scenario.as_str()) != Some(r.scenario.as_str()) {
            rows.push(ScenarioSummary {
                scenario: r.scenario.clone(),
                runs: 0,
                passed: 0,
                expected_violations: 0,
                unexpected_violations: 0,
                max_latency: None,
                faults: FaultStats::default(),
            });
        }
        let row = rows.last_mut().expect("pushed above");
        row.runs += 1;
        row.passed += u64::from(r.passed);
        if let Some(f) = &r.faults {
            row.faults.add(f);
        }
        for v in &r.violations {
            if v.expected {
                row.expected_violations += 1;
            } else {
                row.unexpected_violations += 1;
            }
        }
        for s in &r.steps {
            if s.detections > 0 {
                row.max_latency = row.max_latency.max(s.latency);
            }
        }
    }
    rows
}

/// Serializes a summary (plus campaign totals) as a deterministic JSON
/// artifact `hypernel-analyze campaign` can diff.
pub fn summary_json(rows: &[ScenarioSummary]) -> Json {
    let total_runs: u64 = rows.iter().map(|r| r.runs).sum();
    let total_passed: u64 = rows.iter().map(|r| r.passed).sum();
    let total_unexpected: u64 = rows.iter().map(|r| r.unexpected_violations).sum();
    Json::obj(vec![
        ("schema", Json::UInt(CAMPAIGN_SCHEMA)),
        ("kind", Json::str(SUMMARY_KIND)),
        ("runs", Json::UInt(total_runs)),
        ("passed", Json::UInt(total_passed)),
        ("unexpected_violations", Json::UInt(total_unexpected)),
        (
            "scenarios",
            Json::Array(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("scenario", Json::str(&r.scenario)),
                            ("runs", Json::UInt(r.runs)),
                            ("passed", Json::UInt(r.passed)),
                            ("expected_violations", Json::UInt(r.expected_violations)),
                            ("unexpected_violations", Json::UInt(r.unexpected_violations)),
                            ("max_latency", r.max_latency.map_or(Json::Null, Json::UInt)),
                            ("faults", fault_counters_json(&r.faults)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(scenario: &str, seed: u64, passed: bool) -> RunRecord {
        RunRecord {
            scenario: scenario.to_string(),
            mode: "Hypernel".to_string(),
            seed,
            cycles: 1000,
            steps: vec![StepRecord {
                name: "cred-escalation".to_string(),
                outcome: "succeeded".to_string(),
                blocked: false,
                monitored: Some((0x4000, 64)),
                detections: 1,
                latency: Some(seed * 10),
            }],
            detections_total: 1,
            mbm: None,
            faults: None,
            audit: None,
            violations: if passed {
                vec![]
            } else {
                vec![Violation {
                    oracle: "detection",
                    step: Some(0),
                    detail: "missed".to_string(),
                    expected: false,
                }]
            },
            passed,
            metrics: None,
            blackbox: None,
            coverage: None,
        }
    }

    #[test]
    fn record_json_round_trips_and_is_deterministic() {
        let r = record("demo", 3, false);
        let a = r.to_json().to_string();
        let b = r.to_json().to_string();
        assert_eq!(a, b, "same record, same bytes");
        let doc = Json::parse(&a).expect("valid JSON");
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some(RECORD_KIND));
        assert_eq!(doc.get("seed").and_then(Json::as_u64), Some(3));
        let violations = doc
            .get("violations")
            .and_then(Json::as_array)
            .expect("violations");
        assert_eq!(violations.len(), 1);
        assert_eq!(
            violations[0].get("oracle").and_then(Json::as_str),
            Some("detection")
        );
        assert_eq!(r.unexpected_violations().count(), 1);
    }

    #[test]
    fn summary_aggregates_per_scenario() {
        let records = vec![
            record("a", 1, true),
            record("a", 2, false),
            record("b", 1, true),
        ];
        let rows = summarize(&records);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].scenario, "a");
        assert_eq!(rows[0].runs, 2);
        assert_eq!(rows[0].passed, 1);
        assert_eq!(rows[0].unexpected_violations, 1);
        assert_eq!(rows[0].max_latency, Some(20));
        let json = summary_json(&rows).to_string();
        let doc = Json::parse(&json).expect("valid");
        assert_eq!(doc.get("runs").and_then(Json::as_u64), Some(3));
        assert_eq!(
            doc.get("unexpected_violations").and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn summary_rolls_up_fault_counters() {
        let mut a = record("a", 1, true);
        a.faults = Some(FaultStats {
            irqs_dropped: 2,
            ..FaultStats::default()
        });
        let mut b = record("a", 2, true);
        b.faults = Some(FaultStats {
            irqs_dropped: 1,
            irqs_delayed: 3,
            ..FaultStats::default()
        });
        let rows = summarize(&[a, b]);
        assert_eq!(rows[0].faults.irqs_dropped, 3);
        assert_eq!(rows[0].faults.irqs_delayed, 3);
        let json = summary_json(&rows).to_string();
        let doc = Json::parse(&json).expect("valid");
        let scenarios = doc.get("scenarios").and_then(Json::as_array).expect("rows");
        let faults = scenarios[0].get("faults").expect("faults object");
        assert_eq!(faults.get("irqs_dropped").and_then(Json::as_u64), Some(3));
        assert_eq!(faults.get("bitmap_desyncs").and_then(Json::as_u64), Some(0));
    }
}
