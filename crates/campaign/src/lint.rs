//! Scenario-file linter: schema checks the TOML loader is too lenient
//! to make.
//!
//! [`Scenario::from_toml`] deliberately ignores keys it does not know —
//! new loader versions must keep reading old corpora. The price is that
//! a typo (`latency_bound` for `latency-bound`, `pids` for `pid`)
//! silently produces a *different* scenario than the author wrote. The
//! linter closes that gap: it re-parses the raw document and flags
//! every key the loader would not consume, plus a handful of semantic
//! smells — a `latency-bound` that can never be checked, Hypernel-only
//! pressure knobs on baseline modes, a `masked` step with nothing
//! declared that could mask it, and scenario names that drift from
//! their file stems (the sweep artifact is keyed by name). Compose
//! sections get the same treatment: unknown keys in `[compose]` /
//! `[[domain]]` / `[[channel]]` / `[[region]]`, dangling channel
//! endpoints, overlapping shared regions, and attack steps that target
//! compose entities the description never declares.

use std::path::Path;

use crate::scenario::Scenario;
use crate::toml::{self, TomlTable};

/// Top-level `key = value` pairs the loader consumes.
const TOP_KEYS: &[&str] = &[
    "name",
    "description",
    "mode",
    "monitor",
    "background-ops",
    "latency-bound",
    "fifo-capacity",
    "drain-budget",
];

/// Hypernel-only knobs: on `native`/`kvm` the loader accepts them but
/// nothing downstream reads them.
const HYPERNEL_ONLY_KEYS: &[&str] = &["monitor", "latency-bound", "fifo-capacity", "drain-budget"];

/// Keys the optional `[metrics]` section consumes.
const METRICS_KEYS: &[&str] = &["window-cycles", "series"];

/// Keys the optional `[compose]` section consumes.
const COMPOSE_KEYS: &[&str] = &["watch"];

/// Keys every `[[domain]]` may carry.
const DOMAIN_KEYS: &[&str] = &["name", "role", "priority", "tasks"];

/// Keys every `[[channel]]` may carry.
const CHANNEL_KEYS: &[&str] = &["name", "from", "to", "capacity"];

/// Keys every `[[region]]` may carry.
const REGION_KEYS: &[&str] = &["name", "owner", "share", "pages", "protect", "va"];

/// Keys every `[[step]]` may carry.
const STEP_COMMON_KEYS: &[&str] = &["kind", "expect"];

/// Keys every `[[fault]]` may carry.
const FAULT_COMMON_KEYS: &[&str] = &["kind", "at", "count"];

/// Extra keys a step of the given kind consumes.
fn step_extra_keys(kind: &str) -> Option<&'static [&'static str]> {
    Some(match kind {
        "cred-escalation" | "map-secure-region" | "atra-cred" | "double-map-cred" => &["pid"],
        "dentry-hijack" => &["path", "rogue-inode"],
        "pt-direct-write" => &["pid", "value"],
        "atra-dentry" => &["path"],
        "cross-domain-cred-theft" => &["attacker", "victim"],
        "shared-region-toctou" => &["region"],
        "channel-spoof" => &["channel"],
        "ttbr-redirect" | "code-injection" | "text-patch" => &[],
        _ => return None,
    })
}

/// Extra (parameter) keys a fault of the given kind consumes.
fn fault_extra_keys(kind: &str) -> Option<&'static [&'static str]> {
    Some(match kind {
        "delay-irq" => &["steps"],
        "flip-snoop-addr" => &["bit"],
        "lose-hypercall" => &["call"],
        "drop-irq" | "stall-translator" | "desync-bitmap" => &[],
        _ => return None,
    })
}

fn unknown_keys(
    table: &TomlTable,
    allowed: &[&str],
    extra: &[&str],
    what: &str,
    out: &mut Vec<String>,
) {
    for (key, _) in &table.values {
        if !allowed.contains(&key.as_str()) && !extra.contains(&key.as_str()) {
            out.push(format!(
                "{what}: unknown key `{key}` (the loader ignores it)"
            ));
        }
    }
}

/// Lints one scenario source. `stem` is the file stem (for the
/// name-matches-file check); pass `None` for sources without a file.
/// Returns one message per problem; empty means clean.
pub fn lint_source(stem: Option<&str>, source: &str) -> Vec<String> {
    let mut out = Vec::new();
    let doc = match toml::parse(source) {
        Ok(doc) => doc,
        Err(e) => return vec![format!("syntax: {e}")],
    };
    let scenario = match Scenario::from_toml(source) {
        Ok(s) => s,
        Err(e) => return vec![format!("schema: {e}")],
    };

    unknown_keys(&doc, TOP_KEYS, &[], "top level", &mut out);
    for (name, t) in &doc.tables {
        if name == "metrics" {
            unknown_keys(t, METRICS_KEYS, &[], "[metrics]", &mut out);
            continue;
        }
        if name == "compose" {
            unknown_keys(t, COMPOSE_KEYS, &[], "[compose]", &mut out);
            continue;
        }
        out.push(format!(
            "top level: unknown section `[{name}]` (only `[metrics]`, `[compose]`, `[[step]]`, \
             `[[fault]]`, `[[domain]]`, `[[channel]]` and `[[region]]` exist)"
        ));
    }
    for (name, tables) in &doc.arrays {
        let keys = match name.as_str() {
            "step" | "fault" => continue, // handled per-kind below
            "domain" => DOMAIN_KEYS,
            "channel" => CHANNEL_KEYS,
            "region" => REGION_KEYS,
            _ => {
                out.push(format!("top level: unknown section `[[{name}]]`"));
                continue;
            }
        };
        for (i, t) in tables.iter().enumerate() {
            unknown_keys(t, keys, &[], &format!("{name} {}", i + 1), &mut out);
        }
    }
    for (i, t) in doc.array("step").iter().enumerate() {
        let what = format!("step {}", i + 1);
        // Unknown kinds are a loader error, already reported above.
        if let Some(extra) = t.get_str("kind").and_then(step_extra_keys) {
            unknown_keys(t, STEP_COMMON_KEYS, extra, &what, &mut out);
        }
    }
    for (i, t) in doc.array("fault").iter().enumerate() {
        let what = format!("fault {}", i + 1);
        if let Some(extra) = t.get_str("kind").and_then(fault_extra_keys) {
            unknown_keys(t, FAULT_COMMON_KEYS, extra, &what, &mut out);
        }
    }

    if let Some(spec) = &scenario.metrics {
        if let Some(series) = &spec.series {
            if series.is_empty() {
                out.push("[metrics]: `series = []` disables every series".to_string());
            }
            for name in series {
                if hypernel_telemetry::metrics::metric(name).is_none() {
                    out.push(format!(
                        "[metrics]: unknown series `{name}` (the recorder ignores it); known: {}",
                        hypernel_telemetry::metrics::metric_names()
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
            }
        }
    }

    if let Some(stem) = stem {
        if scenario.name != stem {
            out.push(format!(
                "name `{}` does not match the file stem `{stem}` (records are keyed by name)",
                scenario.name
            ));
        }
    }
    if !matches!(scenario.mode, hypernel::Mode::Hypernel) {
        for key in HYPERNEL_ONLY_KEYS {
            if doc.get(key).is_some() {
                out.push(format!(
                    "`{key}` has no effect in `{}` mode (Hypernel-only knob)",
                    scenario.mode
                ));
            }
        }
        for (i, spec) in scenario.steps.iter().enumerate() {
            if matches!(
                spec.expect,
                crate::scenario::StepExpect::Detected | crate::scenario::StepExpect::Masked
            ) {
                out.push(format!(
                    "step {}: expect `{}` needs a monitor, but mode `{}` has none",
                    i + 1,
                    spec.expect.name(),
                    scenario.mode
                ));
            }
        }
    }
    if scenario.latency_bound.is_some()
        && !scenario
            .steps
            .iter()
            .any(|s| s.expect == crate::scenario::StepExpect::Detected)
    {
        out.push(
            "latency-bound is set but no step expects `detected`, so it can never be checked"
                .to_string(),
        );
    }
    if let Some(compose) = &scenario.compose {
        for problem in compose.validate() {
            out.push(format!("compose: {problem}"));
        }
    }
    for (i, spec) in scenario.steps.iter().enumerate() {
        use hypernel_kernel::AttackStep;
        let references: Vec<(&str, &str, &str)> = match &spec.step {
            AttackStep::CrossDomainCredTheft { attacker, victim } => vec![
                ("attacker", "domain", attacker.as_str()),
                ("victim", "domain", victim.as_str()),
            ],
            AttackStep::SharedRegionToctou { region } => {
                vec![("region", "region", region.as_str())]
            }
            AttackStep::ChannelSpoof { channel } => {
                vec![("channel", "channel", channel.as_str())]
            }
            _ => continue,
        };
        let Some(compose) = &scenario.compose else {
            out.push(format!(
                "step {}: `{}` targets a composed system, but the scenario declares none \
                 (add [[domain]] / [[channel]] / [[region]] sections)",
                i + 1,
                spec.step.name()
            ));
            continue;
        };
        for (key, kind, name) in references {
            let declared = match kind {
                "domain" => compose.domains.iter().any(|d| d.name == name),
                "channel" => compose.channels.iter().any(|c| c.name == name),
                _ => compose.regions.iter().any(|r| r.name == name),
            };
            if !declared {
                out.push(format!(
                    "step {}: `{key}` references undeclared {kind} `{name}`",
                    i + 1
                ));
            }
        }
    }
    let declared_mask = !scenario.faults.specs.is_empty()
        || scenario.fifo_capacity.is_some()
        || scenario.drain_budget.is_some();
    if !declared_mask {
        for (i, spec) in scenario.steps.iter().enumerate() {
            if spec.expect == crate::scenario::StepExpect::Masked {
                out.push(format!(
                    "step {}: expect `masked` but the scenario declares no fault or FIFO pressure \
                     that could mask detection",
                    i + 1
                ));
            }
        }
    }
    out
}

/// One linter complaint, attributed to its file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintIssue {
    /// Corpus file name (not the full path).
    pub file: String,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for LintIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.file, self.message)
    }
}

/// Lints every `*.toml` under `dir` (sorted by file name) plus the one
/// cross-file invariant: scenario names must be unique.
///
/// # Errors
///
/// Returns an error string when the directory or a file cannot be read
/// — I/O problems, not lint findings.
pub fn lint_dir(dir: &Path) -> Result<Vec<LintIssue>, String> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read `{}`: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    paths.sort();
    let mut issues = Vec::new();
    let mut names: Vec<(String, String)> = Vec::new();
    for path in &paths {
        let file = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let stem = path.file_stem().map(|s| s.to_string_lossy().into_owned());
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        for message in lint_source(stem.as_deref(), &source) {
            issues.push(LintIssue {
                file: file.clone(),
                message,
            });
        }
        if let Ok(scenario) = Scenario::from_toml(&source) {
            if let Some((_, first)) = names.iter().find(|(n, _)| *n == scenario.name) {
                issues.push(LintIssue {
                    file: file.clone(),
                    message: format!(
                        "duplicate scenario name `{}` (also in {first})",
                        scenario.name
                    ),
                });
            } else {
                names.push((scenario.name.clone(), file.clone()));
            }
        }
    }
    Ok(issues)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = r#"
        name = "demo"
        mode = "hypernel"
        latency-bound = 250000

        [[step]]
        kind = "cred-escalation"
        pid = 1
        expect = "detected"
    "#;

    #[test]
    fn clean_scenario_has_no_findings() {
        assert_eq!(lint_source(Some("demo"), CLEAN), Vec::<String>::new());
    }

    #[test]
    fn unknown_keys_are_flagged_at_every_level() {
        let source = r#"
            name = "demo"
            latency_bound = 9     # typo: underscore
            [[step]]
            kind = "text-patch"
            pid = 1               # text-patch takes no pid
            expect = "blocked"
            [[fault]]
            kind = "drop-irq"
            bit = 3               # drop-irq has no param
        "#;
        let issues = lint_source(Some("demo"), source);
        assert!(
            issues.iter().any(|m| m.contains("`latency_bound`")),
            "{issues:?}"
        );
        assert!(issues
            .iter()
            .any(|m| m.contains("step 1") && m.contains("`pid`")));
        assert!(issues
            .iter()
            .any(|m| m.contains("fault 1") && m.contains("`bit`")));
    }

    #[test]
    fn semantic_smells_are_flagged() {
        let source = r#"
            name = "other"
            mode = "native"
            latency-bound = 100
            fifo-capacity = 4
            [[step]]
            kind = "cred-escalation"
            expect = "detected"
        "#;
        let issues = lint_source(Some("demo"), source);
        assert!(issues.iter().any(|m| m.contains("file stem")), "{issues:?}");
        assert!(issues.iter().any(|m| m.contains("`latency-bound`")));
        assert!(issues.iter().any(|m| m.contains("`fifo-capacity`")));
        assert!(issues.iter().any(|m| m.contains("needs a monitor")));
    }

    #[test]
    fn masked_without_declared_pressure_is_flagged() {
        let source = r#"
            name = "demo"
            [[step]]
            kind = "cred-escalation"
            expect = "masked"
        "#;
        let issues = lint_source(Some("demo"), source);
        assert!(issues.iter().any(|m| m.contains("masked")), "{issues:?}");
        // Declaring the fault clears it.
        let fixed = format!("{source}\n[[fault]]\nkind = \"drop-irq\"\n");
        assert!(lint_source(Some("demo"), &fixed).is_empty());
    }

    #[test]
    fn metrics_section_is_validated_not_flagged() {
        let clean = r#"
            name = "demo"
            [metrics]
            window-cycles = 10000
            series = ["hypercalls", "mbm-fifo-depth"]
            [[step]]
            kind = "cred-escalation"
            pid = 1
            expect = "detected"
        "#;
        assert_eq!(lint_source(Some("demo"), clean), Vec::<String>::new());

        let dirty = r#"
            name = "demo"
            [metrics]
            window_cycles = 10000   # typo: underscore
            series = ["hypercalls", "l0-hits"]
            [[step]]
            kind = "cred-escalation"
            pid = 1
            expect = "detected"
        "#;
        let issues = lint_source(Some("demo"), dirty);
        assert!(
            issues.iter().any(|m| m.contains("`window_cycles`")),
            "{issues:?}"
        );
        assert!(issues
            .iter()
            .any(|m| m.contains("unknown series `l0-hits`")));

        let empty = r#"
            name = "demo"
            [metrics]
            series = []
            [[step]]
            kind = "cred-escalation"
            pid = 1
            expect = "detected"
        "#;
        let issues = lint_source(Some("demo"), empty);
        assert!(
            issues.iter().any(|m| m.contains("disables every series")),
            "{issues:?}"
        );
    }

    const CLEAN_COMPOSE: &str = r#"
        name = "demo"
        mode = "hypernel"

        [compose]
        watch = true

        [[domain]]
        name = "server"
        role = "server"

        [[domain]]
        name = "client"

        [[channel]]
        name = "req"
        from = "client"
        to = "server"

        [[region]]
        name = "shared"
        owner = "server"
        share = ["client"]
        protect = true

        [[step]]
        kind = "cross-domain-cred-theft"
        attacker = "client"
        victim = "server"
        expect = "detected"

        [[step]]
        kind = "shared-region-toctou"
        region = "shared"
        expect = "detected"

        [[step]]
        kind = "channel-spoof"
        channel = "req"
        expect = "detected"
    "#;

    #[test]
    fn clean_compose_scenario_has_no_findings() {
        assert_eq!(
            lint_source(Some("demo"), CLEAN_COMPOSE),
            Vec::<String>::new()
        );
    }

    #[test]
    fn unknown_compose_keys_are_flagged() {
        let source = r#"
            name = "demo"
            [compose]
            watchdog = true       # typo: not `watch`
            [[domain]]
            name = "server"
            prio = 3              # typo: not `priority`
            [[channel]]
            name = "req"
            from = "server"
            to = "server"
            depth = 4             # typo: not `capacity`
            [[region]]
            name = "shared"
            owner = "server"
            sharing = ["server"]  # typo: not `share`
            [[step]]
            kind = "channel-spoof"
            channel = "req"
            expect = "detected"
        "#;
        let issues = lint_source(Some("demo"), source);
        assert!(
            issues
                .iter()
                .any(|m| m.contains("[compose]") && m.contains("`watchdog`")),
            "{issues:?}"
        );
        assert!(issues
            .iter()
            .any(|m| m.contains("domain 1") && m.contains("`prio`")));
        assert!(issues
            .iter()
            .any(|m| m.contains("channel 1") && m.contains("`depth`")));
        assert!(issues
            .iter()
            .any(|m| m.contains("region 1") && m.contains("`sharing`")));
    }

    #[test]
    fn compose_semantic_problems_are_flagged() {
        let source = r#"
            name = "demo"
            [[domain]]
            name = "server"
            [[channel]]
            name = "req"
            from = "ghost"
            to = "server"
            [[region]]
            name = "a"
            owner = "server"
            va = 0x60000000
            [[region]]
            name = "b"
            owner = "server"
            va = 0x60000000
            [[step]]
            kind = "shared-region-toctou"
            region = "a"
            expect = "detected"
        "#;
        let issues = lint_source(Some("demo"), source);
        assert!(
            issues
                .iter()
                .any(|m| m.contains("compose:") && m.contains("ghost")),
            "{issues:?}"
        );
        assert!(
            issues
                .iter()
                .any(|m| m.contains("compose:") && m.contains("overlap")),
            "{issues:?}"
        );
    }

    #[test]
    fn compose_steps_without_a_composed_system_are_flagged() {
        let source = r#"
            name = "demo"
            [[step]]
            kind = "shared-region-toctou"
            region = "shared"
            expect = "detected"
        "#;
        let issues = lint_source(Some("demo"), source);
        assert!(
            issues.iter().any(|m| m.contains("declares none")),
            "{issues:?}"
        );

        let dangling = r#"
            name = "demo"
            [[domain]]
            name = "server"
            [[step]]
            kind = "cross-domain-cred-theft"
            attacker = "client"
            victim = "server"
            expect = "detected"
        "#;
        let issues = lint_source(Some("demo"), dangling);
        assert!(
            issues
                .iter()
                .any(|m| m.contains("undeclared domain `client`")),
            "{issues:?}"
        );
    }

    #[test]
    fn the_shipped_corpus_is_clean() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus");
        let issues = lint_dir(&dir).expect("corpus dir readable");
        assert_eq!(issues, Vec::new(), "corpus must lint clean");
    }
}
