//! Property-based tests for the MBM: the central soundness/completeness
//! claim — *the monitor raises exactly one event per bus-visible write to
//! a watched word, and none for anything else* — plus bitmap and ring
//! algebra.

use std::collections::HashSet;

use hypernel_machine::addr::PhysAddr;
use hypernel_machine::bus::{BusContext, BusSnooper, BusTransaction};
use hypernel_machine::irq::IrqController;
use hypernel_machine::mem::PhysMemory;
use hypernel_mbm::bitmap::BitmapLayout;
use hypernel_mbm::monitor::{Mbm, MbmConfig};
use hypernel_mbm::ring::{RingLayout, WriteEvent};
use proptest::prelude::*;

const WINDOW_LEN: u64 = 1 << 16; // 64 KiB window = 8192 words
const BITMAP_BASE: u64 = 0x40_0000;
const RING_BASE: u64 = 0x50_0000;

fn config() -> MbmConfig {
    MbmConfig::standard(
        PhysAddr::new(0),
        WINDOW_LEN,
        PhysAddr::new(BITMAP_BASE),
        PhysAddr::new(RING_BASE),
        4096,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exactly the watched words raise events; every watched write is
    /// recorded with its value; nothing is lost or invented.
    #[test]
    fn exactly_watched_words_raise_events(
        watched in prop::collection::hash_set(0u64..(WINDOW_LEN / 8), 0..64),
        writes in prop::collection::vec((0u64..(WINDOW_LEN / 8), any::<u64>()), 0..200),
    ) {
        let config = config();
        let mut mbm = Mbm::new(config);
        let mut mem = PhysMemory::new(0x60_0000);
        let mut irq = IrqController::new();
        let mut extra = 0u64;

        // Program the bitmap the way Hypersec would (bus-visible writes).
        for &w in &watched {
            for u in config.bitmap.plan_update(PhysAddr::new(w * 8), 8, true) {
                let v = u.apply_to(mem.read_u64(u.word));
                mem.write_u64(u.word, v);
                let mut ctx = BusContext { mem: &mut mem, irq: &mut irq, extra_mem_accesses: &mut extra, cycles: 0 };
                mbm.on_transaction(&BusTransaction::WriteWord { addr: u.word, value: v }, &mut ctx);
            }
        }
        // Drain any stray state.
        let _ = irq.ack_next();

        let mut expected: Vec<WriteEvent> = Vec::new();
        for &(word, value) in &writes {
            let addr = PhysAddr::new(word * 8);
            mem.write_u64(addr, value);
            let mut ctx = BusContext { mem: &mut mem, irq: &mut irq, extra_mem_accesses: &mut extra, cycles: 0 };
            mbm.on_transaction(&BusTransaction::WriteWord { addr, value }, &mut ctx);
            if watched.contains(&word) {
                expected.push(WriteEvent { addr, value });
            }
        }

        prop_assert_eq!(mbm.stats().events_matched, expected.len() as u64);
        prop_assert_eq!(mbm.stats().fifo_dropped, 0);
        prop_assert_eq!(mbm.stats().ring_overflows, 0);
        // The ring holds exactly the expected events, in order.
        let mut got = Vec::new();
        while let Some(ev) = config.ring.pop(&mut mem) {
            got.push(ev);
        }
        prop_assert_eq!(got, expected);
    }

    /// Setting and then clearing bitmap ranges always round-trips: the
    /// final watch set equals the model.
    #[test]
    fn bitmap_updates_compose(
        ops in prop::collection::vec(
            (0u64..(WINDOW_LEN / 8 - 16), 1u64..16, any::<bool>()),
            1..64
        ),
    ) {
        let layout = BitmapLayout::new(PhysAddr::new(0), WINDOW_LEN, PhysAddr::new(BITMAP_BASE));
        let mut mem = PhysMemory::new(0x60_0000);
        let mut model: HashSet<u64> = HashSet::new();
        for (start, len, watch) in ops {
            for u in layout.plan_update(PhysAddr::new(start * 8), len * 8, watch) {
                let v = u.apply_to(mem.read_u64(u.word));
                mem.write_u64(u.word, v);
            }
            for w in start..start + len {
                if watch {
                    model.insert(w);
                } else {
                    model.remove(&w);
                }
            }
        }
        for w in 0..(WINDOW_LEN / 8) {
            prop_assert_eq!(
                layout.is_watched(&mut mem, PhysAddr::new(w * 8)),
                model.contains(&w),
                "word {}", w
            );
        }
    }

    /// The ring buffer is a FIFO queue under any interleaving of pushes
    /// and pops, and never exceeds its capacity.
    #[test]
    fn ring_is_fifo_under_interleaving(
        ops in prop::collection::vec(any::<bool>(), 1..300),
    ) {
        let ring = RingLayout::new(PhysAddr::new(0x1000), 16);
        let mut mem = PhysMemory::new(0x10_0000);
        let mut model: std::collections::VecDeque<WriteEvent> = Default::default();
        let mut seq = 0u64;
        for push in ops {
            if push {
                let ev = WriteEvent { addr: PhysAddr::new(seq * 8), value: seq };
                seq += 1;
                let accepted = ring.push(&mut mem, ev);
                prop_assert_eq!(accepted, model.len() < 16);
                if accepted {
                    model.push_back(ev);
                }
            } else {
                prop_assert_eq!(ring.pop(&mut mem), model.pop_front());
            }
            prop_assert_eq!(ring.len(&mut mem), model.len() as u64);
        }
    }

    /// A throttled translator plus `step()` drains eventually deliver
    /// every event that fit in the FIFO — queueing changes latency, not
    /// correctness.
    #[test]
    fn throttled_pipeline_loses_only_overflow(
        drain_rate in 1usize..4,
        burst in 1u64..24,
    ) {
        let mut cfg = config();
        cfg.fifo_capacity = 8;
        cfg.drain_per_transaction = Some(drain_rate);
        let mut mbm = Mbm::new(cfg);
        let mut mem = PhysMemory::new(0x60_0000);
        let mut irq = IrqController::new();
        let mut extra = 0u64;
        // Watch one word, write it `burst` times back-to-back.
        for u in cfg.bitmap.plan_update(PhysAddr::new(0x100), 8, true) {
            let v = u.apply_to(mem.read_u64(u.word));
            mem.write_u64(u.word, v);
            let mut ctx = BusContext { mem: &mut mem, irq: &mut irq, extra_mem_accesses: &mut extra, cycles: 0 };
            mbm.on_transaction(&BusTransaction::WriteWord { addr: u.word, value: v }, &mut ctx);
        }
        for i in 0..burst {
            let mut ctx = BusContext { mem: &mut mem, irq: &mut irq, extra_mem_accesses: &mut extra, cycles: 0 };
            mbm.on_transaction(
                &BusTransaction::WriteWord { addr: PhysAddr::new(0x100), value: i },
                &mut ctx,
            );
        }
        // Let the pipeline drain fully.
        for _ in 0..64 {
            let mut ctx = BusContext { mem: &mut mem, irq: &mut irq, extra_mem_accesses: &mut extra, cycles: 0 };
            mbm.step(&mut ctx);
        }
        let s = mbm.stats();
        prop_assert_eq!(s.captured, burst);
        prop_assert_eq!(s.events_matched + s.fifo_dropped, burst);
        prop_assert_eq!(mbm.fifo_len(), 0);
    }
}
