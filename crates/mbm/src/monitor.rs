//! The Memory Bus Monitor device (paper Fig. 5).
//!
//! Pipeline, module for module as in the paper's microarchitecture:
//!
//! 1. **Bus traffic snooper** — captures write address/value pairs from
//!    the CPU↔DRAM bus ([`hypernel_machine::bus::BusSnooper`] hook).
//! 2. **FIFO buffer** — decouples capture from lookup
//!    ([`crate::fifo::SnoopFifo`]).
//! 3. **Bitmap translator** — computes the bitmap word address for each
//!    captured write and fetches it, from the **bitmap cache**
//!    ([`crate::cache::BitmapCache`]) when possible or main memory
//!    otherwise (read-allocate).
//! 4. **Decision unit** — tests the watch bit; on a match records the
//!    event in the output ring buffer and raises the MBM interrupt line.
//!
//! The bitmap and ring buffer both live in the secure region, "so the
//! kernel cannot undermine the MBM operation" (§5.3).
//!
//! ## Watch-page summary filter (host fast path)
//!
//! Real workloads write overwhelmingly to pages with no watched word at
//! all, so the monitor keeps a host-side per-page summary (a watched-
//! word count per 4 KiB chunk of the window, maintained from the same
//! snooped bitmap writes that keep the bitmap cache coherent). A write
//! into a chunk whose count is zero is *short-circuited*: the FIFO and
//! translator are skipped, while `captured`/`bitmap_lookups` are
//! charged exactly as the reference pipeline would (in the lossless
//! configuration each captured write is translated exactly once within
//! the same transaction). Before skipping, the filter confirms the
//! verdict against the word the decision unit would actually read
//! (cached bitmap word, else DRAM), so bitmap updates that bypass the
//! bus — out-of-band programming via debug writes — can never blind it. The skip is taken only when it is provably
//! model-invisible: no fault injector, no telemetry sink, lossless
//! drain, and a FIFO deep enough that a line write-back can never
//! overflow it. Only the host-observability counters (`device_reads`,
//! bitmap-cache hits/misses) may diverge — none of them feed simulated
//! cycles or serialized artifacts. `HYPERNEL_NO_FASTPATH=1` (or
//! [`Mbm::set_filter_enabled`]) forces the reference pipeline.

use std::any::Any;

use hypernel_machine::addr::{PhysAddr, PAGE_SIZE};
use hypernel_machine::bus::{BusContext, BusSnooper, BusTransaction};
use hypernel_machine::fastpath_enabled;
use hypernel_machine::fault::{IrqFault, SharedFaults};
use hypernel_machine::irq::IrqLine;
use hypernel_telemetry::{Event, PointKind, SharedSink, SpanKind, Track};

use crate::bitmap::BitmapLayout;
use crate::cache::{BitmapCache, BitmapCacheStats};
use crate::fifo::{SnoopFifo, SnoopedWrite};
use crate::ring::{RingLayout, WriteEvent};

/// Bitmap words covering one 4 KiB chunk of the window: 512 words per
/// page, one bit per word, 64 bits per bitmap word.
const WORDS_PER_CHUNK: usize = (PAGE_SIZE / 8 / 64) as usize;

/// Most captures a single bus transaction can produce (a full cache-line
/// write-back). A FIFO at least this deep can never overflow in the
/// lossless configuration, which the summary filter's envelope requires.
const MAX_CAPTURES_PER_TXN: usize = 8;

/// Configuration of an MBM instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MbmConfig {
    /// Geometry of the watch bitmap (window + storage).
    pub bitmap: BitmapLayout,
    /// Geometry of the output ring buffer.
    pub ring: RingLayout,
    /// Snoop FIFO depth (entries).
    pub fifo_capacity: usize,
    /// Maximum FIFO entries the bitmap translator processes per bus
    /// transaction (and per [`BusSnooper::step`] call). `None` means the
    /// translator always keeps up — the lossless configuration used for
    /// the paper experiments.
    pub drain_per_transaction: Option<usize>,
    /// Bitmap cache capacity in 64-bit words; `None` disables the cache
    /// (ablation configuration).
    pub bitmap_cache_words: Option<usize>,
    /// Optional guarded physical range `(base, len)`: *any* bus write
    /// into it raises an immediate alarm, with no bitmap lookup. The
    /// paper's §8 suggests the MBM can detect DMA attacks on the secure
    /// space "with additional engineering efforts" — this is that
    /// engineering: Hypersec's private memory is only ever written
    /// through the CPU cache (never the bus), so bus-level writes there
    /// can only be DMA tampering.
    pub secure_guard: Option<(PhysAddr, u64)>,
}

impl MbmConfig {
    /// A lossless monitor with the paper's structure and a 64-word bitmap
    /// cache, covering `window_len` bytes from `window_base`, with secure
    /// structures at `bitmap_base` / `ring_base`.
    pub fn standard(
        window_base: PhysAddr,
        window_len: u64,
        bitmap_base: PhysAddr,
        ring_base: PhysAddr,
        ring_entries: u64,
    ) -> Self {
        Self {
            bitmap: BitmapLayout::new(window_base, window_len, bitmap_base),
            ring: RingLayout::new(ring_base, ring_entries),
            fifo_capacity: 16,
            drain_per_transaction: None,
            bitmap_cache_words: Some(64),
            secure_guard: None,
        }
    }

    /// Returns the configuration with a guarded range for DMA protection
    /// of the secure space (paper §8 extension).
    pub fn with_secure_guard(mut self, base: PhysAddr, len: u64) -> Self {
        self.secure_guard = Some((base, len));
        self
    }
}

/// Running statistics of the monitor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MbmStats {
    /// Write transactions observed on the bus (any address).
    pub bus_writes_seen: u64,
    /// Word-writes captured into the FIFO (inside the monitored window).
    pub captured: u64,
    /// Captured writes lost to FIFO overflow.
    pub fifo_dropped: u64,
    /// Address of the first capture lost to FIFO overflow, so verdict
    /// oracles can tell "missed by design (overflow)" from "missed
    /// (bug)" — a watched word inside the page of this address was
    /// provably never translated.
    pub first_dropped_addr: Option<PhysAddr>,
    /// Bitmap lookups performed by the translator.
    pub bitmap_lookups: u64,
    /// Events whose watch bit was set (the paper's "interrupts generated"
    /// count in Table 2).
    pub events_matched: u64,
    /// Matched events lost because the output ring was full.
    pub ring_overflows: u64,
    /// Interrupt assertions to the host CPU.
    pub irqs_raised: u64,
    /// DRAM reads the MBM issued for bitmap fetches.
    pub device_reads: u64,
    /// DRAM writes the MBM issued for ring-buffer updates.
    pub device_writes: u64,
    /// Bus writes into the guarded secure range (DMA-tampering alarms).
    pub secure_alarms: u64,
    /// Captured writes short-circuited by the watch-page summary filter
    /// (host observability; zero when the filter is disabled).
    pub page_filter_skips: u64,
    /// Lookups where the value the decision unit consumed differed from
    /// the stored bitmap word — the device's own desync self-check. Any
    /// nonzero count means the translator was blinded (e.g. by a
    /// `desync-bitmap` fault); the audit oracle treats it as a failure
    /// even when every per-step verdict looked clean.
    pub lookup_divergences: u64,
}

/// The memory bus monitor device. Attach it to a machine with
/// [`hypernel_machine::bus::MemoryBus::attach`].
///
/// ```
/// use hypernel_machine::addr::PhysAddr;
/// use hypernel_mbm::monitor::{Mbm, MbmConfig};
///
/// let config = MbmConfig::standard(
///     PhysAddr::new(0),          // monitor the first…
///     1 << 20,                   // …1 MiB of DRAM
///     PhysAddr::new(64 << 20),   // bitmap at 64 MiB
///     PhysAddr::new(65 << 20),   // ring at 65 MiB
///     256,
/// );
/// let mbm = Mbm::new(config);
/// assert_eq!(mbm.stats().captured, 0);
/// ```
#[derive(Clone)]
pub struct Mbm {
    config: MbmConfig,
    fifo: SnoopFifo,
    cache: BitmapCache,
    stats: MbmStats,
    sink: Option<SharedSink>,
    faults: Option<SharedFaults>,
    /// Interrupt assertions a fault is holding back: `(remaining pipeline
    /// steps, triggering write address)`.
    delayed_irqs: Vec<(u64, u64)>,
    /// Host switch for the watch-page summary filter (see module docs).
    filter_enabled: bool,
    /// Captures the filter short-circuited in the current bus
    /// transaction. The reference pipeline would have enqueued each of
    /// them (and drained them at transaction end), so the FIFO's
    /// high-water mark must count them as transient occupancy — see
    /// [`SnoopFifo::note_occupancy`].
    txn_filtered: usize,
    /// Host-side copy of the bitmap storage, maintained from the same
    /// snooped writes that keep the bitmap cache coherent. `Rc` keeps
    /// warm-boot forks O(1): the vectors cover the whole monitored
    /// window (tens of MiB) but mutate only on bitmap programming, so
    /// clones share them copy-on-write.
    shadow: std::rc::Rc<Vec<u64>>,
    /// Watched-word count per 4 KiB chunk of the monitored window
    /// (`Rc` for the same copy-on-write forking reason as `shadow`).
    page_watch: std::rc::Rc<Vec<u32>>,
}

impl std::fmt::Debug for Mbm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mbm")
            .field("config", &self.config)
            .field("fifo", &self.fifo)
            .field("cache", &self.cache)
            .field("stats", &self.stats)
            .field("telemetry", &self.sink.is_some())
            .finish()
    }
}

impl Mbm {
    /// Creates a monitor from its configuration.
    pub fn new(config: MbmConfig) -> Self {
        Self {
            config,
            fifo: SnoopFifo::new(config.fifo_capacity),
            cache: match config.bitmap_cache_words {
                Some(words) => BitmapCache::new(words),
                None => BitmapCache::disabled(),
            },
            stats: MbmStats::default(),
            sink: None,
            faults: None,
            delayed_irqs: Vec::new(),
            filter_enabled: fastpath_enabled(),
            txn_filtered: 0,
            shadow: std::rc::Rc::new(vec![0; (config.bitmap.bitmap_bytes() / 8) as usize]),
            page_watch: std::rc::Rc::new(vec![
                0;
                config.bitmap.window_len().div_ceil(PAGE_SIZE)
                    as usize
            ]),
        }
    }

    /// Enables or disables the watch-page summary filter (testing hook;
    /// the default follows [`fastpath_enabled`]). The summary itself is
    /// maintained either way, so toggling is always safe.
    pub fn set_filter_enabled(&mut self, enabled: bool) {
        self.filter_enabled = enabled;
    }

    /// Rebuilds the watch-page summary from the bitmap's backing memory.
    /// Correctness never requires this — [`Mbm::filter_skips`] confirms
    /// every skip against the decision unit's view — but it restores the
    /// summary's precision after bitmap storage was modified without bus
    /// visibility (e.g. debug writes in tests); Hypersec's non-cacheable
    /// mapping makes every real update snoopable.
    pub fn resync_filter(&mut self, mem: &mut hypernel_machine::mem::PhysMemory) {
        let base = self.config.bitmap.bitmap_base();
        let shadow = std::rc::Rc::make_mut(&mut self.shadow);
        let page_watch = std::rc::Rc::make_mut(&mut self.page_watch);
        page_watch.iter_mut().for_each(|c| *c = 0);
        for (wi, slot) in shadow.iter_mut().enumerate() {
            *slot = mem.read_u64(base.add(wi as u64 * 8));
            page_watch[wi / WORDS_PER_CHUNK] += slot.count_ones();
        }
    }

    /// Updates the shadow bitmap + per-chunk summary from a snooped
    /// bitmap-storage write. Runs regardless of `filter_enabled` so the
    /// filter can be toggled at any time.
    fn note_bitmap_write(&mut self, addr: PhysAddr, value: u64) {
        let off = addr.raw() - self.config.bitmap.bitmap_base().raw();
        let wi = (off / 8) as usize;
        // Peek before `make_mut`: a write that changes nothing must not
        // detach a page-watch/shadow copy shared with a fork template.
        let old = match self.shadow.get(wi) {
            Some(&old) if old != value => old,
            _ => return,
        };
        std::rc::Rc::make_mut(&mut self.shadow)[wi] = value;
        let count = &mut std::rc::Rc::make_mut(&mut self.page_watch)[wi / WORDS_PER_CHUNK];
        *count = count
            .wrapping_add(value.count_ones())
            .wrapping_sub(old.count_ones());
    }

    /// Is the short-circuit provably model-invisible right now? (See
    /// module docs for the envelope.)
    fn filter_safe(&self) -> bool {
        self.faults.is_none()
            && self.sink.is_none()
            && self.config.drain_per_transaction.is_none()
            && self.config.fifo_capacity >= MAX_CAPTURES_PER_TXN
    }

    /// Whether a captured write at `addr` may skip the FIFO/translator:
    /// its page summary shows no watched word, the envelope holds, and
    /// the word the decision unit would actually consult (cached bitmap
    /// word, else DRAM — exactly [`Mbm::translate_one`]'s order) agrees.
    /// The confirmation makes the skip correct even when the bitmap was
    /// programmed without bus visibility (debug writes), where the
    /// snoop-maintained summary is stale.
    fn filter_skips(&self, addr: PhysAddr, mem: &mut hypernel_machine::mem::PhysMemory) -> bool {
        if !self.filter_enabled || !self.filter_safe() {
            return false;
        }
        let chunk = ((addr.raw() - self.config.bitmap.window_base().raw()) / PAGE_SIZE) as usize;
        if self.page_watch.get(chunk).is_none_or(|&c| c != 0) {
            return false;
        }
        let Some((word, mask)) = self.config.bitmap.locate(addr) else {
            return false;
        };
        let effective = self.cache.peek(word).unwrap_or_else(|| mem.read_u64(word));
        effective & mask == 0
    }

    /// Charges what the reference pipeline would have charged for a
    /// short-circuited write: one capture, one (lossless) translation,
    /// and one transient FIFO slot (the entry would have enqueued and
    /// drained within this transaction).
    fn skip_capture(&mut self) {
        self.stats.captured += 1;
        self.stats.bitmap_lookups += 1;
        self.stats.page_filter_skips += 1;
        self.txn_filtered += 1;
        self.fifo
            .note_occupancy(self.fifo.len() + self.txn_filtered);
    }

    /// Installs (or removes) the fault injector covering the monitor's
    /// fault sites: IRQ drop/delay, translator stalls and bitmap
    /// desync. Share the same injector with the machine so one schedule
    /// spans the whole pipeline.
    pub fn set_fault_injector(&mut self, faults: Option<SharedFaults>) {
        self.faults = faults;
    }

    /// The installed fault-injector handle, if any (an owned `Rc`
    /// clone). Forking callers use this to verify re-wiring.
    pub fn fault_injector(&self) -> Option<SharedFaults> {
        self.faults.clone()
    }

    /// Installs (or removes) the telemetry sink; MBM events are stamped
    /// on [`Track::Mbm`] with the CPU cycle counter carried in on the bus.
    pub fn set_telemetry_sink(&mut self, sink: Option<SharedSink>) {
        self.sink = sink;
    }

    /// Emits a point event on the MBM track. One branch when disabled.
    #[inline]
    fn emit(&self, cycles: u64, point: PointKind, a: u64, b: u64) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut()
                .record(&Event::mark(cycles, Track::Mbm, point, a, b));
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &MbmConfig {
        &self.config
    }

    /// Mutable configuration access — experiments and stress tests
    /// adjust the drain rate mid-run to model translator backpressure.
    pub fn config_mut(&mut self) -> &mut MbmConfig {
        &mut self.config
    }

    /// Running statistics.
    pub fn stats(&self) -> MbmStats {
        self.stats
    }

    /// Bitmap-cache statistics.
    pub fn bitmap_cache_stats(&self) -> BitmapCacheStats {
        self.cache.stats()
    }

    /// Resets all statistics (the hardware equivalent of clearing its
    /// performance counters between benchmark runs).
    pub fn reset_stats(&mut self) {
        self.stats = MbmStats::default();
    }

    /// Current FIFO depth (for queue-pressure tests).
    pub fn fifo_len(&self) -> usize {
        self.fifo.len()
    }

    /// Deepest the FIFO has ever been (for queue-pressure time series).
    pub fn fifo_high_watermark(&self) -> usize {
        self.fifo.high_watermark()
    }

    /// Coarse occupancy bucket of the FIFO's high watermark relative to
    /// its configured capacity: `empty`, `low` (under half), `high`
    /// (half or more), or `full` (capacity reached). Derived from
    /// model-visible state only, so coverage keys built on it are
    /// fastpath-invariant.
    pub fn fifo_occupancy_bucket(&self) -> &'static str {
        let capacity = self.config.fifo_capacity.max(1);
        let peak = self.fifo_high_watermark();
        if peak == 0 {
            "empty"
        } else if peak >= capacity {
            "full"
        } else if peak * 2 >= capacity {
            "high"
        } else {
            "low"
        }
    }

    fn capture(&mut self, write: SnoopedWrite, cycles: u64) {
        self.stats.captured += 1;
        if self.fifo.push(write) {
            // Entries the filter short-circuited earlier in this
            // transaction still occupy reference-pipeline slots under
            // this push (the filter's safety envelope rules out drops,
            // so the reference depth is exactly `len + filtered`).
            if self.txn_filtered > 0 {
                self.fifo
                    .note_occupancy(self.fifo.len() + self.txn_filtered);
            }
            self.emit(
                cycles,
                PointKind::MbmFifoPush,
                write.addr.raw(),
                write.value,
            );
        } else {
            self.stats.fifo_dropped += 1;
            if self.stats.first_dropped_addr.is_none() {
                self.stats.first_dropped_addr = Some(write.addr);
            }
            self.emit(
                cycles,
                PointKind::MbmFifoDrop,
                write.addr.raw(),
                write.value,
            );
        }
    }

    /// Asserts the MBM interrupt line, subject to drop/delay faults.
    /// `trigger` is the write address that caused the assertion.
    fn raise_irq(&mut self, ctx: &mut BusContext<'_>, trigger: u64) {
        let fault = match &self.faults {
            Some(f) => f.borrow_mut().on_irq_raise(trigger),
            None => IrqFault::None,
        };
        match fault {
            IrqFault::None => {
                self.stats.irqs_raised += 1;
                ctx.irq.raise(IrqLine::MBM);
                self.emit(
                    ctx.cycles,
                    PointKind::IrqRaised,
                    u64::from(IrqLine::MBM.0),
                    trigger,
                );
            }
            IrqFault::Drop => {}
            IrqFault::Delay(steps) => self.delayed_irqs.push((steps.max(1), trigger)),
        }
    }

    /// Advances delayed interrupt assertions by one pipeline step,
    /// delivering any that have run out their delay.
    fn tick_delayed_irqs(&mut self, ctx: &mut BusContext<'_>) {
        if self.delayed_irqs.is_empty() {
            return;
        }
        let mut due = Vec::new();
        self.delayed_irqs.retain_mut(|(remaining, trigger)| {
            *remaining -= 1;
            if *remaining == 0 {
                due.push(*trigger);
                false
            } else {
                true
            }
        });
        for trigger in due {
            self.stats.irqs_raised += 1;
            ctx.irq.raise(IrqLine::MBM);
            self.emit(
                ctx.cycles,
                PointKind::IrqRaised,
                u64::from(IrqLine::MBM.0),
                trigger,
            );
        }
    }

    /// The bitmap translator + decision unit: processes one FIFO entry.
    fn translate_one(&mut self, ctx: &mut BusContext<'_>) -> bool {
        let Some(write) = self.fifo.pop() else {
            return false;
        };
        let Some((bitmap_word, mask)) = self.config.bitmap.locate(write.addr) else {
            // Window membership was checked at capture; a failure here
            // would be a hardware bug.
            return true;
        };
        self.stats.bitmap_lookups += 1;
        let mut word_value = match self.cache.lookup(bitmap_word) {
            Some(v) => v,
            None => {
                let v = ctx.mem.read_u64(bitmap_word);
                self.stats.device_reads += 1;
                *ctx.extra_mem_accesses += 1;
                self.cache.fill(bitmap_word, v);
                v
            }
        };
        // Fault site: a desynchronized bitmap word reads back as zero,
        // blinding the decision unit for this lookup.
        let stored_value = word_value;
        if let Some(faults) = &self.faults {
            if faults.borrow_mut().on_bitmap_lookup(bitmap_word.raw()) {
                word_value = 0;
            }
        }
        if word_value != stored_value {
            self.stats.lookup_divergences += 1;
        }
        // Decision unit.
        if word_value & mask != 0 {
            self.stats.events_matched += 1;
            self.emit(
                ctx.cycles,
                PointKind::MbmWatchHit,
                write.addr.raw(),
                write.value,
            );
            let pushed = self.config.ring.push(
                ctx.mem,
                WriteEvent {
                    addr: write.addr,
                    value: write.value,
                },
            );
            self.stats.device_writes += 3; // entry (2 words) + tail index
            if pushed {
                self.raise_irq(ctx, write.addr.raw());
            } else {
                self.stats.ring_overflows += 1;
            }
        }
        true
    }

    fn drain(&mut self, ctx: &mut BusContext<'_>) {
        self.tick_delayed_irqs(ctx);
        // Fault site: a stalled translator skips this whole drain
        // opportunity, letting the FIFO back up.
        if let Some(faults) = &self.faults {
            if faults.borrow_mut().on_drain() {
                return;
            }
        }
        let budget = self.config.drain_per_transaction.unwrap_or(usize::MAX);
        let backlog = self.fifo.len() as u64;
        if backlog > 0 {
            self.emit_span_begin(ctx.cycles, backlog);
        }
        let mut processed = 0u64;
        for _ in 0..budget {
            if !self.translate_one(ctx) {
                break;
            }
            processed += 1;
        }
        if backlog > 0 {
            self.emit_span_end(ctx.cycles, processed);
        }
    }

    #[inline]
    fn emit_span_begin(&self, cycles: u64, arg: u64) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut()
                .record(&Event::begin(cycles, Track::Mbm, SpanKind::MbmDrain, arg));
        }
    }

    #[inline]
    fn emit_span_end(&self, cycles: u64, arg: u64) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut()
                .record(&Event::end(cycles, Track::Mbm, SpanKind::MbmDrain, arg));
        }
    }
}

impl Mbm {
    fn check_guard(&mut self, addr: PhysAddr, ctx: &mut BusContext<'_>) {
        if let Some((base, len)) = self.config.secure_guard {
            if addr >= base && addr.raw() < base.raw() + len {
                self.stats.secure_alarms += 1;
                self.raise_irq(ctx, addr.raw());
            }
        }
    }
}

impl BusSnooper for Mbm {
    fn on_transaction(&mut self, txn: &BusTransaction, ctx: &mut BusContext<'_>) {
        // Phantom FIFO occupancy is scoped to one transaction: the
        // trailing drain() retires everything the reference pipeline
        // would have enqueued.
        self.txn_filtered = 0;
        if txn.is_write() {
            self.check_guard(txn.addr(), ctx);
        }
        match *txn {
            BusTransaction::WriteWord { addr, value } => {
                self.stats.bus_writes_seen += 1;
                if self.config.bitmap.in_bitmap_storage(addr) {
                    self.cache.snoop_update(addr, value);
                    self.note_bitmap_write(addr, value);
                } else if self.config.bitmap.covers(addr) {
                    if self.filter_skips(addr, ctx.mem) {
                        self.skip_capture();
                    } else {
                        self.capture(SnoopedWrite { addr, value }, ctx.cycles);
                    }
                }
            }
            BusTransaction::WriteLine { addr, data } => {
                self.stats.bus_writes_seen += 1;
                for (i, value) in data.iter().enumerate() {
                    let word_addr = addr.add(i as u64 * 8);
                    if self.config.bitmap.in_bitmap_storage(word_addr) {
                        self.cache.snoop_update(word_addr, *value);
                        self.note_bitmap_write(word_addr, *value);
                    } else if self.config.bitmap.covers(word_addr) {
                        if self.filter_skips(word_addr, ctx.mem) {
                            self.skip_capture();
                        } else {
                            self.capture(
                                SnoopedWrite {
                                    addr: word_addr,
                                    value: *value,
                                },
                                ctx.cycles,
                            );
                        }
                    }
                }
            }
            BusTransaction::ReadWord { .. } | BusTransaction::ReadLine { .. } => {}
        }
        self.drain(ctx);
    }

    fn step(&mut self, ctx: &mut BusContext<'_>) {
        self.drain(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn clone_box(&self) -> Box<dyn BusSnooper> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypernel_machine::irq::IrqController;
    use hypernel_machine::mem::PhysMemory;

    const WINDOW_LEN: u64 = 1 << 20;
    const BITMAP_BASE: u64 = 0x400_0000;
    const RING_BASE: u64 = 0x500_0000;

    fn config() -> MbmConfig {
        MbmConfig::standard(
            PhysAddr::new(0),
            WINDOW_LEN,
            PhysAddr::new(BITMAP_BASE),
            PhysAddr::new(RING_BASE),
            64,
        )
    }

    struct Rig {
        mbm: Mbm,
        mem: PhysMemory,
        irq: IrqController,
        extra: u64,
    }

    impl Rig {
        fn new(config: MbmConfig) -> Self {
            Self {
                mbm: Mbm::new(config),
                mem: PhysMemory::new(0x600_0000),
                irq: IrqController::new(),
                extra: 0,
            }
        }

        /// Marks `len` bytes at `pa` as watched by writing the bitmap the
        /// way Hypersec would (via bus-visible writes so the cache stays
        /// coherent).
        fn watch(&mut self, pa: u64, len: u64) {
            let updates = self
                .mbm
                .config()
                .bitmap
                .plan_update(PhysAddr::new(pa), len, true);
            for u in updates {
                let cur = self.mem.read_u64(u.word);
                let val = u.apply_to(cur);
                self.mem.write_u64(u.word, val);
                self.txn(BusTransaction::WriteWord {
                    addr: u.word,
                    value: val,
                });
            }
        }

        fn txn(&mut self, txn: BusTransaction) {
            let mut ctx = BusContext {
                mem: &mut self.mem,
                irq: &mut self.irq,
                extra_mem_accesses: &mut self.extra,
                cycles: 0,
            };
            self.mbm.on_transaction(&txn, &mut ctx);
        }

        fn write(&mut self, addr: u64, value: u64) {
            self.mem.write_u64(PhysAddr::new(addr), value);
            self.txn(BusTransaction::WriteWord {
                addr: PhysAddr::new(addr),
                value,
            });
        }

        fn pop_event(&mut self) -> Option<WriteEvent> {
            self.mbm.config().ring.pop(&mut self.mem)
        }
    }

    #[test]
    fn watched_write_raises_interrupt_with_event() {
        let mut rig = Rig::new(config());
        rig.watch(0x1000, 8);
        rig.write(0x1000, 0xDEAD);
        assert!(rig.irq.is_pending(IrqLine::MBM));
        let ev = rig.pop_event().expect("event recorded");
        assert_eq!(ev.addr, PhysAddr::new(0x1000));
        assert_eq!(ev.value, 0xDEAD);
        assert_eq!(rig.mbm.stats().events_matched, 1);
    }

    #[test]
    fn unwatched_write_is_filtered() {
        let mut rig = Rig::new(config());
        rig.watch(0x1000, 8);
        rig.write(0x2000, 1);
        rig.write(0x1008, 2); // adjacent word, same page — still filtered
        assert!(!rig.irq.is_pending(IrqLine::MBM));
        assert!(rig.pop_event().is_none());
        assert_eq!(rig.mbm.stats().bitmap_lookups, 2);
        assert_eq!(rig.mbm.stats().events_matched, 0);
    }

    #[test]
    fn word_granularity_vs_page_granularity() {
        // The paper's core claim: watching one word of a page means writes
        // to the other 511 words cost nothing.
        let mut rig = Rig::new(config());
        rig.watch(0x3000, 8);
        for w in 1..512u64 {
            rig.write(0x3000 + w * 8, w);
        }
        assert_eq!(rig.mbm.stats().events_matched, 0);
        rig.write(0x3000, 42);
        assert_eq!(rig.mbm.stats().events_matched, 1);
    }

    #[test]
    fn line_writeback_is_scanned_word_by_word() {
        let mut rig = Rig::new(config());
        rig.watch(0x4010, 8); // third word of the line at 0x4000
        let mut data = [0u64; 8];
        data[2] = 0x77;
        rig.txn(BusTransaction::WriteLine {
            addr: PhysAddr::new(0x4000),
            data,
        });
        assert_eq!(rig.mbm.stats().events_matched, 1);
        let ev = rig.pop_event().unwrap();
        assert_eq!(ev.addr, PhysAddr::new(0x4010));
        assert_eq!(ev.value, 0x77);
    }

    #[test]
    fn bitmap_cache_serves_repeated_lookups() {
        let mut rig = Rig::new(config());
        rig.watch(0x5000, 8);
        for i in 0..10 {
            rig.write(0x5000, i);
        }
        let cs = rig.mbm.bitmap_cache_stats();
        assert_eq!(cs.misses, 1, "only the first lookup fetches from DRAM");
        assert_eq!(cs.hits, 9);
        assert_eq!(rig.mbm.stats().device_reads, 1);
    }

    #[test]
    fn snooped_bitmap_write_keeps_cache_coherent() {
        let mut rig = Rig::new(config());
        rig.watch(0x6000, 8);
        rig.write(0x6000, 1); // fills the cache, matches
        assert_eq!(rig.mbm.stats().events_matched, 1);
        // Hypersec un-watches the word; the bitmap write is snooped.
        let updates = rig
            .mbm
            .config()
            .bitmap
            .plan_update(PhysAddr::new(0x6000), 8, false);
        for u in updates {
            let cur = rig.mem.read_u64(u.word);
            let val = u.apply_to(cur);
            rig.mem.write_u64(u.word, val);
            rig.txn(BusTransaction::WriteWord {
                addr: u.word,
                value: val,
            });
        }
        rig.write(0x6000, 2);
        assert_eq!(
            rig.mbm.stats().events_matched,
            1,
            "stale cached bitmap would have matched again"
        );
    }

    #[test]
    fn cacheless_ablation_reads_dram_every_time() {
        let mut cfg = config();
        cfg.bitmap_cache_words = None;
        let mut rig = Rig::new(cfg);
        rig.watch(0x5000, 8);
        for i in 0..10 {
            rig.write(0x5000, i);
        }
        assert_eq!(rig.mbm.stats().device_reads, 10);
    }

    #[test]
    fn slow_translator_overflows_fifo() {
        let mut cfg = config();
        cfg.fifo_capacity = 4;
        cfg.drain_per_transaction = Some(0); // translator stalled
        let mut rig = Rig::new(cfg);
        rig.watch(0x7000, 64);
        for w in 0..8u64 {
            rig.write(0x7000 + w * 8, w);
        }
        assert_eq!(rig.mbm.stats().fifo_dropped, 4);
        assert_eq!(rig.mbm.fifo_len(), 4);
        // Un-stall: step drains the backlog.
        rig.mbm.config.drain_per_transaction = None;
        let mut ctx = BusContext {
            mem: &mut rig.mem,
            irq: &mut rig.irq,
            extra_mem_accesses: &mut rig.extra,
            cycles: 0,
        };
        rig.mbm.step(&mut ctx);
        assert_eq!(rig.mbm.fifo_len(), 0);
        assert_eq!(rig.mbm.stats().events_matched, 4);
    }

    #[test]
    fn ring_overflow_is_counted() {
        let mut cfg = config();
        cfg.ring = RingLayout::new(PhysAddr::new(RING_BASE), 2);
        let mut rig = Rig::new(cfg);
        rig.watch(0x8000, 8);
        for i in 0..5 {
            rig.write(0x8000, i);
        }
        assert_eq!(rig.mbm.stats().events_matched, 5);
        assert_eq!(rig.mbm.stats().ring_overflows, 3);
        assert_eq!(rig.mbm.stats().irqs_raised, 2);
    }

    #[test]
    fn secure_guard_alarms_on_any_write_in_range() {
        let mut cfg = config().with_secure_guard(PhysAddr::new(0x580_0000), 0x10_0000);
        cfg.bitmap = BitmapLayout::new(PhysAddr::new(0), WINDOW_LEN, PhysAddr::new(BITMAP_BASE));
        let mut rig = Rig::new(cfg);
        // A write inside the guarded range alarms without any bitmap bit.
        rig.mem = PhysMemory::new(0x600_0000);
        rig.txn(BusTransaction::WriteWord {
            addr: PhysAddr::new(0x580_0008),
            value: 0xD77A,
        });
        assert_eq!(rig.mbm.stats().secure_alarms, 1);
        assert!(rig.irq.is_pending(IrqLine::MBM));
        // Reads never alarm; writes outside the range never alarm.
        rig.txn(BusTransaction::ReadWord {
            addr: PhysAddr::new(0x580_0008),
        });
        rig.txn(BusTransaction::WriteWord {
            addr: PhysAddr::new(0x1000),
            value: 1,
        });
        assert_eq!(rig.mbm.stats().secure_alarms, 1);
    }

    #[test]
    fn secure_guard_covers_line_writebacks() {
        let cfg = config().with_secure_guard(PhysAddr::new(0x580_0000), 0x10_0000);
        let mut rig = Rig::new(cfg);
        rig.txn(BusTransaction::WriteLine {
            addr: PhysAddr::new(0x580_0040),
            data: [7; 8],
        });
        assert_eq!(rig.mbm.stats().secure_alarms, 1);
    }

    #[test]
    fn reset_stats() {
        let mut rig = Rig::new(config());
        rig.watch(0x1000, 8);
        rig.write(0x1000, 1);
        assert_ne!(rig.mbm.stats(), MbmStats::default());
        rig.mbm.reset_stats();
        assert_eq!(rig.mbm.stats(), MbmStats::default());
    }

    #[test]
    fn fifo_overflow_records_first_dropped_addr() {
        let mut cfg = config();
        cfg.fifo_capacity = 2;
        cfg.drain_per_transaction = Some(0); // translator stalled
        let mut rig = Rig::new(cfg);
        rig.watch(0x7000, 64);
        for w in 0..5u64 {
            rig.write(0x7000 + w * 8, w);
        }
        // Capacity 2 ⇒ writes 0 and 1 queue; write 2 (addr 0x7010) is the
        // first casualty and must be the one remembered.
        assert_eq!(rig.mbm.stats().fifo_dropped, 3);
        assert_eq!(
            rig.mbm.stats().first_dropped_addr,
            Some(PhysAddr::new(0x7010))
        );
    }

    #[test]
    fn drop_irq_fault_suppresses_assertion_but_event_lands_in_ring() {
        use hypernel_machine::fault::{share, FaultPlan, FaultSpec};
        let mut rig = Rig::new(config());
        rig.mbm.set_fault_injector(Some(share(
            FaultPlan::new().with(FaultSpec::drop_irq(1, 1)),
        )));
        rig.watch(0x1000, 8);
        rig.write(0x1000, 99);
        assert_eq!(rig.mbm.stats().events_matched, 1);
        assert_eq!(rig.mbm.stats().irqs_raised, 0);
        assert!(!rig.irq.is_pending(IrqLine::MBM));
        // The ring still holds the event: the monitor saw the write, only
        // the line assertion was swallowed.
        assert!(rig.pop_event().is_some());
    }

    #[test]
    fn delay_irq_fault_defers_assertion_by_pipeline_steps() {
        use hypernel_machine::fault::{share, FaultPlan, FaultSpec};
        let mut rig = Rig::new(config());
        let faults = share(FaultPlan::new().with(FaultSpec::delay_irq(1, 1, 2)));
        rig.mbm.set_fault_injector(Some(faults));
        rig.watch(0x1000, 8);
        rig.write(0x1000, 7);
        assert!(!rig.irq.is_pending(IrqLine::MBM));
        // Each step (or drain) ticks the delay once; two ticks deliver it.
        let mut ctx = BusContext {
            mem: &mut rig.mem,
            irq: &mut rig.irq,
            extra_mem_accesses: &mut rig.extra,
            cycles: 0,
        };
        rig.mbm.step(&mut ctx);
        assert!(!ctx.irq.is_pending(IrqLine::MBM));
        rig.mbm.step(&mut ctx);
        assert!(ctx.irq.is_pending(IrqLine::MBM));
        assert_eq!(rig.mbm.stats().irqs_raised, 1);
    }

    #[test]
    fn stall_translator_fault_backs_up_fifo() {
        use hypernel_machine::fault::{share, FaultPlan, FaultSpec};
        let mut rig = Rig::new(config());
        rig.watch(0x1000, 8);
        // Stall the next two drain opportunities (installed after `watch`
        // so the bitmap-update transactions don't consume the window).
        rig.mbm.set_fault_injector(Some(share(
            FaultPlan::new().with(FaultSpec::stall_translator(1, 2)),
        )));
        rig.write(0x1000, 1); // drain stalled: capture stays queued
        assert_eq!(rig.mbm.fifo_len(), 1);
        rig.write(0x2000, 2); // unwatched, but its drain is stalled too
        assert_eq!(rig.mbm.fifo_len(), 2);
        rig.write(0x3000, 3); // third drain runs, clears the backlog
        assert_eq!(rig.mbm.fifo_len(), 0);
        assert_eq!(rig.mbm.stats().events_matched, 1);
    }

    // ------------------------------------------------------------------
    // Watch-page summary filter
    // ------------------------------------------------------------------

    #[test]
    fn filter_short_circuits_unwatched_pages() {
        let mut rig = Rig::new(config());
        rig.mbm.set_filter_enabled(true);
        rig.watch(0x1000, 8);
        // Writes to a page with no watched word skip the pipeline…
        for w in 0..100u64 {
            rig.write(0x9000 + w * 8, w);
        }
        assert_eq!(rig.mbm.stats().page_filter_skips, 100);
        // …but charge the same capture/lookup counters as the reference.
        assert_eq!(rig.mbm.stats().captured, 100);
        assert_eq!(rig.mbm.stats().bitmap_lookups, 100);
        assert_eq!(rig.mbm.stats().events_matched, 0);
        // Watched writes still go through the real pipeline and match.
        rig.write(0x1000, 7);
        assert_eq!(rig.mbm.stats().events_matched, 1);
        assert!(rig.irq.is_pending(IrqLine::MBM));
    }

    #[test]
    fn filter_coherent_when_watch_bits_set_and_cleared_mid_run() {
        let mut rig = Rig::new(config());
        rig.mbm.set_filter_enabled(true);
        // Initially unwatched: writes to the page are skipped.
        rig.write(0x6000, 1);
        assert_eq!(rig.mbm.stats().page_filter_skips, 1);
        // Hypersec sets the watch bit (bus-visible bitmap write): the
        // very next write must take the real pipeline and match.
        rig.watch(0x6000, 8);
        rig.write(0x6000, 2);
        assert_eq!(rig.mbm.stats().events_matched, 1);
        // Clearing it re-arms the short circuit.
        let updates = rig
            .mbm
            .config()
            .bitmap
            .plan_update(PhysAddr::new(0x6000), 8, false);
        for u in updates {
            let cur = rig.mem.read_u64(u.word);
            let val = u.apply_to(cur);
            rig.mem.write_u64(u.word, val);
            rig.txn(BusTransaction::WriteWord {
                addr: u.word,
                value: val,
            });
        }
        rig.write(0x6000, 3);
        assert_eq!(rig.mbm.stats().events_matched, 1);
        assert_eq!(rig.mbm.stats().page_filter_skips, 2);
        // A *different* word of the same page keeps the page hot while
        // any bit in it is set.
        rig.watch(0x6100, 8);
        rig.write(0x6008, 4); // unwatched word, watched page: no skip
        assert_eq!(rig.mbm.stats().page_filter_skips, 2);
        assert_eq!(rig.mbm.stats().events_matched, 1);
    }

    #[test]
    fn filter_matches_reference_pipeline_statistics() {
        let mut runs = Vec::new();
        for enabled in [true, false] {
            let mut rig = Rig::new(config());
            rig.mbm.set_filter_enabled(enabled);
            rig.watch(0x2000, 16);
            for w in 0..64u64 {
                rig.write(0x4000 + w * 8, w); // unwatched page
            }
            rig.write(0x2008, 1); // watched
            rig.txn(BusTransaction::WriteLine {
                addr: PhysAddr::new(0x4100),
                data: [9; 8],
            });
            let mut stats = rig.mbm.stats();
            assert_eq!(stats.page_filter_skips > 0, enabled);
            // Host-observability fields are allowed to diverge.
            stats.page_filter_skips = 0;
            stats.device_reads = 0;
            // The high-water mark is a *model* value: short-circuited
            // captures count as transient occupancy, so the skipping
            // run reports the depth the reference run actually reached.
            runs.push((
                stats,
                rig.mbm.fifo_high_watermark(),
                rig.irq.is_pending(IrqLine::MBM),
            ));
        }
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn filter_self_disables_outside_safety_envelope() {
        // A lossy FIFO (or throttled drain) can drop captures; skipping
        // would change which ones. The filter must stand down.
        let mut cfg = config();
        cfg.fifo_capacity = 2;
        let mut rig = Rig::new(cfg);
        rig.mbm.set_filter_enabled(true);
        rig.write(0x9000, 1);
        assert_eq!(rig.mbm.stats().page_filter_skips, 0);

        let mut cfg = config();
        cfg.drain_per_transaction = Some(1);
        let mut rig = Rig::new(cfg);
        rig.mbm.set_filter_enabled(true);
        rig.write(0x9000, 1);
        assert_eq!(rig.mbm.stats().page_filter_skips, 0);

        // A fault injector also forces the reference pipeline.
        use hypernel_machine::fault::{share, FaultPlan};
        let mut rig = Rig::new(config());
        rig.mbm.set_filter_enabled(true);
        rig.mbm.set_fault_injector(Some(share(FaultPlan::new())));
        rig.write(0x9000, 1);
        assert_eq!(rig.mbm.stats().page_filter_skips, 0);
    }

    #[test]
    fn filter_confirms_against_memory_for_non_bus_bitmap_writes() {
        // Out-of-band bitmap programming (no bus transaction, *no*
        // resync — the bare-monitor ATRA rig does exactly this): the
        // stale summary alone would skip; the decision-unit confirmation
        // must not.
        let mut rig = Rig::new(config());
        rig.mbm.set_filter_enabled(true);
        let (word, mask) = rig
            .mbm
            .config()
            .bitmap
            .locate(PhysAddr::new(0x3000))
            .unwrap();
        rig.mem.write_u64(word, mask);
        rig.write(0x3000, 5);
        assert_eq!(rig.mbm.stats().events_matched, 1);
        assert_eq!(rig.mbm.stats().page_filter_skips, 0);
    }

    #[test]
    fn filter_resync_recovers_from_non_bus_bitmap_writes() {
        let mut rig = Rig::new(config());
        rig.mbm.set_filter_enabled(true);
        // Set a watch bit behind the monitor's back (no bus transaction).
        let (word, mask) = rig
            .mbm
            .config()
            .bitmap
            .locate(PhysAddr::new(0x3000))
            .unwrap();
        rig.mem.write_u64(word, mask);
        // The stale summary would skip; resync restores coherence.
        rig.mbm.resync_filter(&mut rig.mem);
        rig.write(0x3000, 5);
        assert_eq!(rig.mbm.stats().events_matched, 1);
        assert_eq!(rig.mbm.stats().page_filter_skips, 0);
    }

    #[test]
    fn desync_bitmap_fault_blinds_one_lookup() {
        use hypernel_machine::fault::{share, FaultPlan, FaultSpec};
        let mut rig = Rig::new(config());
        rig.mbm.set_fault_injector(Some(share(
            FaultPlan::new().with(FaultSpec::desync_bitmap(1, 1)),
        )));
        rig.watch(0x1000, 8);
        rig.write(0x1000, 1); // lookup desynced: watched write missed
        assert_eq!(rig.mbm.stats().events_matched, 0);
        rig.write(0x1000, 2); // fault window exhausted: detected again
        assert_eq!(rig.mbm.stats().events_matched, 1);
    }
}
