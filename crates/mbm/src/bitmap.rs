//! The word-granularity watch bitmap.
//!
//! "The monitored region is represented at the word granularity through a
//! bitmap which maps one word (8 bytes) to one bit" (paper §5.3). The
//! bitmap itself lives in the secure region of DRAM — the kernel cannot
//! reach it; only Hypersec writes it and only the MBM reads it.
//!
//! [`BitmapLayout`] is pure geometry: it tells both producers (Hypersec)
//! and the consumer (the MBM's bitmap translator) where the bit for a
//! given monitored physical word lives. It performs no memory access
//! itself.

use hypernel_machine::addr::{PhysAddr, WORD_SIZE};
use hypernel_machine::mem::PhysMemory;

/// Geometry of the watch bitmap: which window of physical memory it
/// covers and where in the secure region its backing words live.
///
/// ```
/// use hypernel_machine::addr::PhysAddr;
/// use hypernel_mbm::bitmap::BitmapLayout;
///
/// // Monitor the first 1 MiB of DRAM; bitmap stored at 64 MiB.
/// let layout = BitmapLayout::new(PhysAddr::new(0), 1 << 20, PhysAddr::new(64 << 20));
/// let (word, mask) = layout.locate(PhysAddr::new(0x40)).unwrap();
/// assert_eq!(word, PhysAddr::new(64 << 20));
/// assert_eq!(mask, 1 << 8); // 0x40 is the 8th word of the window
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitmapLayout {
    window_base: PhysAddr,
    window_len: u64,
    bitmap_base: PhysAddr,
}

impl BitmapLayout {
    /// Creates a layout covering `window_len` bytes of physical memory
    /// starting at `window_base`, with bitmap storage at `bitmap_base`.
    ///
    /// # Panics
    ///
    /// Panics unless `window_base`/`window_len` are word-aligned and the
    /// window does not overlap the bitmap storage (the MBM must never
    /// monitor its own state).
    pub fn new(window_base: PhysAddr, window_len: u64, bitmap_base: PhysAddr) -> Self {
        assert!(
            window_base.is_word_aligned(),
            "window base must be word-aligned"
        );
        assert!(
            window_len.is_multiple_of(WORD_SIZE),
            "window length must be word-aligned"
        );
        assert!(window_len > 0, "window must be non-empty");
        let layout = Self {
            window_base,
            window_len,
            bitmap_base,
        };
        let bm_end = bitmap_base.raw() + layout.bitmap_bytes();
        let overlap =
            window_base.raw() < bm_end && bitmap_base.raw() < window_base.raw() + window_len;
        assert!(
            !overlap,
            "bitmap storage must not be inside the monitored window"
        );
        layout
    }

    /// Base of the monitored physical window.
    pub fn window_base(&self) -> PhysAddr {
        self.window_base
    }

    /// Length of the monitored physical window in bytes.
    pub fn window_len(&self) -> u64 {
        self.window_len
    }

    /// Base of the bitmap storage in the secure region.
    pub fn bitmap_base(&self) -> PhysAddr {
        self.bitmap_base
    }

    /// Number of bytes of bitmap storage required: one bit per 8-byte
    /// word, i.e. `window_len / 64`, rounded up to a whole word.
    pub fn bitmap_bytes(&self) -> u64 {
        let bits = self.window_len / WORD_SIZE;
        bits.div_ceil(64) * 8
    }

    /// Returns `true` if `pa` lies inside the monitored window.
    pub fn covers(&self, pa: PhysAddr) -> bool {
        pa >= self.window_base && pa.raw() < self.window_base.raw() + self.window_len
    }

    /// Returns `true` if `pa` lies inside the bitmap storage itself (the
    /// MBM snoops these writes to keep its bitmap cache coherent).
    pub fn in_bitmap_storage(&self, pa: PhysAddr) -> bool {
        pa >= self.bitmap_base && pa.raw() < self.bitmap_base.raw() + self.bitmap_bytes()
    }

    /// Locates the bitmap bit guarding the monitored word containing
    /// `pa`: returns the word-aligned physical address of the bitmap word
    /// and the single-bit mask within it, or `None` if `pa` is outside the
    /// window.
    pub fn locate(&self, pa: PhysAddr) -> Option<(PhysAddr, u64)> {
        if !self.covers(pa) {
            return None;
        }
        let word_index = (pa.raw() - self.window_base.raw()) / WORD_SIZE;
        let bitmap_word = self.bitmap_base.add((word_index / 64) * 8);
        let mask = 1u64 << (word_index % 64);
        Some((bitmap_word, mask))
    }

    /// Computes the bitmap-word updates that set (`watch = true`) or clear
    /// the bits covering `len` bytes starting at `base`. Updates are
    /// coalesced per bitmap word so a large region costs one write per 64
    /// monitored words.
    ///
    /// The returned operations are *read-modify-write* deltas: the caller
    /// (Hypersec) applies each as `word = (word & !clear) | set`.
    ///
    /// # Panics
    ///
    /// Panics if any part of the range is outside the window or the range
    /// is not word-aligned.
    pub fn plan_update(&self, base: PhysAddr, len: u64, watch: bool) -> Vec<BitmapUpdate> {
        assert!(
            base.is_word_aligned() && len.is_multiple_of(WORD_SIZE),
            "range must be word-aligned"
        );
        assert!(
            self.covers(base) && (len == 0 || self.covers(PhysAddr::new(base.raw() + len - 1))),
            "range must lie inside the monitored window"
        );
        let mut updates: Vec<BitmapUpdate> = Vec::new();
        let mut addr = base;
        let end = base.add(len);
        while addr < end {
            let (word, mask) = self.locate(addr).expect("covered by assertion above");
            match updates.last_mut() {
                Some(u) if u.word == word => u.mask |= mask,
                _ => updates.push(BitmapUpdate { word, mask, watch }),
            }
            addr = addr.add(WORD_SIZE);
        }
        updates
    }

    /// Reads the watch bit for the monitored word containing `pa`
    /// directly from backing memory (bypassing the MBM's bitmap cache —
    /// used by verification code and tests).
    pub fn is_watched(&self, mem: &mut PhysMemory, pa: PhysAddr) -> bool {
        match self.locate(pa) {
            Some((word, mask)) => mem.read_u64(word) & mask != 0,
            None => false,
        }
    }

    /// Watch-coverage query over a word-aligned span: reads the stored
    /// bitmap through `read` (typically `Machine::debug_read_phys`) and
    /// reports how many of the span's words are actually watched, plus
    /// each unwatched word. The static auditor runs this over every
    /// registered sensitive region.
    pub fn coverage(
        &self,
        base: PhysAddr,
        len: u64,
        mut read: impl FnMut(PhysAddr) -> u64,
    ) -> WatchCoverage {
        let mut coverage = WatchCoverage::default();
        let mut addr = base;
        let end = PhysAddr::new(base.raw() + len);
        while addr < end {
            match self.locate(addr) {
                Some((word, mask)) => {
                    coverage.words += 1;
                    if read(word) & mask != 0 {
                        coverage.watched += 1;
                    } else {
                        coverage.unwatched.push(addr);
                    }
                }
                None => coverage.outside_window.push(addr),
            }
            addr = addr.add(WORD_SIZE);
        }
        coverage
    }
}

/// Result of a [`BitmapLayout::coverage`] query over one span.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WatchCoverage {
    /// Words of the span that lie inside the monitored window.
    pub words: u64,
    /// Of those, how many have their watch bit set.
    pub watched: u64,
    /// Window words whose watch bit is clear.
    pub unwatched: Vec<PhysAddr>,
    /// Span words outside the monitored window entirely.
    pub outside_window: Vec<PhysAddr>,
}

impl WatchCoverage {
    /// `true` when every word of the span is inside the window and
    /// watched.
    pub fn is_full(&self) -> bool {
        self.unwatched.is_empty() && self.outside_window.is_empty()
    }
}

/// One coalesced read-modify-write of a bitmap word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitmapUpdate {
    /// Physical address of the bitmap word.
    pub word: PhysAddr,
    /// Bits to set (when watching) or clear (when unwatching).
    pub mask: u64,
    /// `true` to set the bits, `false` to clear them.
    pub watch: bool,
}

impl BitmapUpdate {
    /// Applies the update to `current`, returning the new word value.
    pub fn apply_to(&self, current: u64) -> u64 {
        if self.watch {
            current | self.mask
        } else {
            current & !self.mask
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> BitmapLayout {
        BitmapLayout::new(PhysAddr::new(0), 1 << 20, PhysAddr::new(0x4000_0000))
    }

    #[test]
    fn bitmap_size_is_one_bit_per_word() {
        let l = layout();
        // 1 MiB window = 131072 words = 131072 bits = 16 KiB.
        assert_eq!(l.bitmap_bytes(), 16 * 1024);
    }

    #[test]
    fn locate_first_and_last_words() {
        let l = layout();
        let (w0, m0) = l.locate(PhysAddr::new(0)).unwrap();
        assert_eq!(w0, l.bitmap_base());
        assert_eq!(m0, 1);
        let (wl, ml) = l.locate(PhysAddr::new((1 << 20) - 8)).unwrap();
        assert_eq!(wl, l.bitmap_base().add(16 * 1024 - 8));
        assert_eq!(ml, 1 << 63);
        assert!(l.locate(PhysAddr::new(1 << 20)).is_none());
    }

    #[test]
    fn locate_uses_word_not_byte_granularity() {
        let l = layout();
        // Two addresses within the same word share a bit.
        let a = l.locate(PhysAddr::new(0x100)).unwrap();
        let b = l.locate(PhysAddr::new(0x107)).unwrap();
        assert_eq!(a, b);
        // The next word gets the next bit.
        let c = l.locate(PhysAddr::new(0x108)).unwrap();
        assert_eq!(c.0, a.0);
        assert_eq!(c.1, a.1 << 1);
    }

    #[test]
    fn plan_update_coalesces_per_bitmap_word() {
        let l = layout();
        // 128 words = 1 KiB spanning exactly two bitmap words.
        let ups = l.plan_update(PhysAddr::new(0), 1024, true);
        assert_eq!(ups.len(), 2);
        assert_eq!(ups[0].mask, u64::MAX);
        assert_eq!(ups[1].mask, u64::MAX);
        assert_eq!(ups[1].word, l.bitmap_base().add(8));
    }

    #[test]
    fn plan_update_partial_word() {
        let l = layout();
        let ups = l.plan_update(PhysAddr::new(16), 24, true);
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].mask, 0b11100);
    }

    #[test]
    fn apply_set_then_clear() {
        let up_set = BitmapUpdate {
            word: PhysAddr::new(0),
            mask: 0b1010,
            watch: true,
        };
        let up_clr = BitmapUpdate {
            word: PhysAddr::new(0),
            mask: 0b0010,
            watch: false,
        };
        let v = up_set.apply_to(0b0001);
        assert_eq!(v, 0b1011);
        assert_eq!(up_clr.apply_to(v), 0b1001);
    }

    #[test]
    fn is_watched_roundtrip() {
        let l = BitmapLayout::new(PhysAddr::new(0), 1 << 16, PhysAddr::new(0x10_0000));
        let mut mem = PhysMemory::new(0x20_0000);
        assert!(!l.is_watched(&mut mem, PhysAddr::new(0x40)));
        for u in l.plan_update(PhysAddr::new(0x40), 8, true) {
            let cur = mem.read_u64(u.word);
            mem.write_u64(u.word, u.apply_to(cur));
        }
        assert!(l.is_watched(&mut mem, PhysAddr::new(0x40)));
        assert!(l.is_watched(&mut mem, PhysAddr::new(0x47)));
        assert!(!l.is_watched(&mut mem, PhysAddr::new(0x48)));
    }

    #[test]
    fn storage_region_identification() {
        let l = layout();
        assert!(l.in_bitmap_storage(l.bitmap_base()));
        assert!(l.in_bitmap_storage(l.bitmap_base().add(l.bitmap_bytes() - 1)));
        assert!(!l.in_bitmap_storage(l.bitmap_base().add(l.bitmap_bytes())));
        assert!(!l.in_bitmap_storage(PhysAddr::new(0)));
    }

    #[test]
    #[should_panic(expected = "must not be inside")]
    fn window_overlapping_bitmap_rejected() {
        BitmapLayout::new(PhysAddr::new(0), 1 << 20, PhysAddr::new(0x8000));
    }

    #[test]
    #[should_panic(expected = "inside the monitored window")]
    fn plan_outside_window_rejected() {
        layout().plan_update(PhysAddr::new((1 << 20) - 8), 16, true);
    }
}
