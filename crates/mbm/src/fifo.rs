//! The snoop FIFO between the bus traffic snooper and the bitmap
//! translator (paper Fig. 5).
//!
//! The snooper captures write address/value pairs faster than the
//! translator can look them up in DRAM, so a bounded FIFO decouples them.
//! If the FIFO is full the oldest behaviour a real design can afford is to
//! drop the incoming event and count it — that loss is observable in the
//! statistics and exercised by the failure-injection tests.

use std::collections::VecDeque;

use hypernel_machine::addr::PhysAddr;

/// One captured write: address/value pair (paper §6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SnoopedWrite {
    /// Word-aligned physical address of the write.
    pub addr: PhysAddr,
    /// The value written.
    pub value: u64,
}

/// Bounded FIFO of snooped writes.
///
/// ```
/// use hypernel_machine::addr::PhysAddr;
/// use hypernel_mbm::fifo::{SnoopFifo, SnoopedWrite};
///
/// let mut fifo = SnoopFifo::new(2);
/// let w = SnoopedWrite { addr: PhysAddr::new(0x8), value: 1 };
/// assert!(fifo.push(w));
/// assert_eq!(fifo.pop(), Some(w));
/// ```
#[derive(Debug, Clone)]
pub struct SnoopFifo {
    queue: VecDeque<SnoopedWrite>,
    capacity: usize,
    pushed: u64,
    dropped: u64,
    high_watermark: usize,
}

impl SnoopFifo {
    /// Creates a FIFO holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be non-zero");
        Self {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            pushed: 0,
            dropped: 0,
            high_watermark: 0,
        }
    }

    /// Enqueues a write. Returns `false` (and counts a drop) if full.
    pub fn push(&mut self, write: SnoopedWrite) -> bool {
        if self.queue.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        self.queue.push_back(write);
        self.pushed += 1;
        self.high_watermark = self.high_watermark.max(self.queue.len());
        true
    }

    /// Dequeues the oldest write.
    pub fn pop(&mut self) -> Option<SnoopedWrite> {
        self.queue.pop_front()
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Capacity the FIFO was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total entries accepted.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Total entries lost to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Deepest the queue has ever been.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Accounts an occupancy the reference pipeline would have reached
    /// even though the corresponding entries never physically enqueued
    /// (the watch-page filter short-circuits them). Keeps the
    /// high-water mark a model value, identical with the host filter on
    /// or off.
    pub fn note_occupancy(&mut self, depth: usize) {
        self.high_watermark = self.high_watermark.max(depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(addr: u64) -> SnoopedWrite {
        SnoopedWrite {
            addr: PhysAddr::new(addr),
            value: addr ^ 0xFF,
        }
    }

    #[test]
    fn fifo_order() {
        let mut f = SnoopFifo::new(4);
        for i in 0..3 {
            assert!(f.push(w(i * 8)));
        }
        assert_eq!(f.pop().unwrap().addr, PhysAddr::new(0));
        assert_eq!(f.pop().unwrap().addr, PhysAddr::new(8));
        assert_eq!(f.pop().unwrap().addr, PhysAddr::new(16));
        assert!(f.pop().is_none());
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut f = SnoopFifo::new(2);
        assert!(f.push(w(0)));
        assert!(f.push(w(8)));
        assert!(!f.push(w(16)));
        assert_eq!(f.dropped(), 1);
        assert_eq!(f.pushed(), 2);
        assert_eq!(f.len(), 2);
        // Drained events are the ones that fit — the overflowed event is
        // gone (the failure mode the monitor must surface).
        assert_eq!(f.pop().unwrap().addr, PhysAddr::new(0));
    }

    #[test]
    fn watermark_tracks_peak() {
        let mut f = SnoopFifo::new(8);
        f.push(w(0));
        f.push(w(8));
        f.pop();
        f.push(w(16));
        assert_eq!(f.high_watermark(), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        SnoopFifo::new(0);
    }
}
