#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # hypernel-mbm
//!
//! The **Memory Bus Monitor (MBM)** of the [Hypernel (DAC 2018)][paper]
//! reproduction: an external hardware module that eavesdrops on the
//! CPU↔DRAM bus and enforces *word-granularity* write monitoring — the
//! paper's answer to the protection-granularity gap that makes
//! page-granularity (nested-paging) kernel monitors so expensive.
//!
//! The device mirrors the paper's Fig. 5 microarchitecture: a bus traffic
//! snooper feeding a [FIFO](fifo), a [bitmap translator](bitmap) backed by
//! a read-allocate [bitmap cache](cache), and a decision unit that records
//! matching events in an output [ring buffer](ring) and interrupts the
//! host CPU. One bitmap bit guards one 8-byte word.
//!
//! The MBM is pure hardware: it has no notion of virtual addresses or
//! kernel objects. Hypersec (crate `hypernel-hypersec`) supplies the
//! processor-internal knowledge — translating monitored virtual regions
//! into the physical bitmap and keeping monitored pages non-cacheable so
//! every write is bus-visible.
//!
//! ## Example
//!
//! ```
//! use hypernel_machine::addr::PhysAddr;
//! use hypernel_machine::machine::{Machine, MachineConfig};
//! use hypernel_mbm::monitor::{Mbm, MbmConfig};
//!
//! let mut machine = Machine::new(MachineConfig::default());
//! let config = MbmConfig::standard(
//!     PhysAddr::new(0),
//!     1 << 30,                     // monitor the first 1 GiB
//!     PhysAddr::new(0x7000_0000),  // bitmap in the secure region
//!     PhysAddr::new(0x7800_0000),  // ring buffer in the secure region
//!     1024,
//! );
//! machine.bus_mut().attach(Box::new(Mbm::new(config)));
//! assert!(machine.bus().snooper::<Mbm>().is_some());
//! ```
//!
//! [paper]: https://doi.org/10.1145/3195970.3196061

pub mod bitmap;
pub mod cache;
pub mod fifo;
pub mod monitor;
pub mod ring;

pub use bitmap::{BitmapLayout, BitmapUpdate, WatchCoverage};
pub use monitor::{Mbm, MbmConfig, MbmStats};
pub use ring::{RingLayout, WriteEvent};
