//! The MBM's internal bitmap cache.
//!
//! "Since accessing the main memory and fetching the bitmap data for every
//! write event in the same region is inefficient, we implemented a bitmap
//! cache in MBM. The bitmap cache follows the read-allocate cache policy
//! and is updated when a memory write event to the bitmap is detected"
//! (paper §6.3).
//!
//! Each cache entry holds one 64-bit bitmap word (covering 64 monitored
//! words = 512 bytes of the window). Coherence is maintained by snooping:
//! the MBM watches bus writes into the bitmap storage region and
//! invalidates the matching entry.

use std::collections::HashMap;
use std::collections::VecDeque;

use hypernel_machine::addr::PhysAddr;

/// Statistics for the bitmap cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitmapCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to fetch from DRAM.
    pub misses: u64,
    /// Entries invalidated by snooped bitmap writes.
    pub invalidations: u64,
    /// Entries discarded by capacity replacement.
    pub evictions: u64,
}

impl BitmapCacheStats {
    /// Hit rate in `[0, 1]`; `None` before the first lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// Read-allocate cache of bitmap words, keyed by the word's physical
/// address.
///
/// ```
/// use hypernel_machine::addr::PhysAddr;
/// use hypernel_mbm::cache::BitmapCache;
///
/// let mut cache = BitmapCache::new(16);
/// let addr = PhysAddr::new(0x1000);
/// assert_eq!(cache.lookup(addr), None);       // miss
/// cache.fill(addr, 0b1010);                   // read-allocate
/// assert_eq!(cache.lookup(addr), Some(0b1010));
/// ```
#[derive(Debug, Clone)]
pub struct BitmapCache {
    entries: HashMap<u64, u64>,
    order: VecDeque<u64>,
    capacity: usize,
    enabled: bool,
    stats: BitmapCacheStats,
}

impl BitmapCache {
    /// Creates a cache holding `capacity` bitmap words.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (use [`BitmapCache::disabled`] to
    /// model a cacheless MBM for the ablation study).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        Self {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            enabled: true,
            stats: BitmapCacheStats::default(),
        }
    }

    /// Creates a disabled cache: every lookup misses. Used by the
    /// bitmap-cache ablation bench to quantify the design choice.
    pub fn disabled() -> Self {
        Self {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: 1,
            enabled: false,
            stats: BitmapCacheStats::default(),
        }
    }

    /// Returns `true` if caching is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Statistics.
    pub fn stats(&self) -> BitmapCacheStats {
        self.stats
    }

    /// Looks up the cached value of the bitmap word at `addr`.
    pub fn lookup(&mut self, addr: PhysAddr) -> Option<u64> {
        if !self.enabled {
            self.stats.misses += 1;
            return None;
        }
        match self.entries.get(&addr.raw()).copied() {
            Some(v) => {
                self.stats.hits += 1;
                Some(v)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Non-mutating lookup: the cached value of the bitmap word at
    /// `addr`, with no statistics or replacement side effects. Used by
    /// the host-side watch-page filter to predict what the translator
    /// would read without perturbing the modeled cache.
    pub fn peek(&self, addr: PhysAddr) -> Option<u64> {
        if !self.enabled {
            return None;
        }
        self.entries.get(&addr.raw()).copied()
    }

    /// Installs a word fetched from DRAM (read-allocate policy).
    pub fn fill(&mut self, addr: PhysAddr, value: u64) {
        if !self.enabled {
            return;
        }
        if self.entries.insert(addr.raw(), value).is_none() {
            self.order.push_back(addr.raw());
            if self.entries.len() > self.capacity {
                while let Some(old) = self.order.pop_front() {
                    if self.entries.remove(&old).is_some() {
                        self.stats.evictions += 1;
                        break;
                    }
                }
            }
        }
    }

    /// Snooped a write of `value` to the bitmap word at `addr`: update the
    /// cached copy if resident ("updated when a memory write event to the
    /// bitmap is detected").
    pub fn snoop_update(&mut self, addr: PhysAddr, value: u64) {
        if !self.enabled {
            return;
        }
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.entries.entry(addr.raw()) {
            e.insert(value);
            self.stats.invalidations += 1;
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_allocate_cycle() {
        let mut c = BitmapCache::new(4);
        let a = PhysAddr::new(0x100);
        assert_eq!(c.lookup(a), None);
        c.fill(a, 7);
        assert_eq!(c.lookup(a), Some(7));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn snoop_update_refreshes_resident_entry() {
        let mut c = BitmapCache::new(4);
        let a = PhysAddr::new(0x100);
        c.fill(a, 1);
        c.snoop_update(a, 3);
        assert_eq!(c.lookup(a), Some(3));
        assert_eq!(c.stats().invalidations, 1);
        // Snooping a non-resident word does nothing.
        c.snoop_update(PhysAddr::new(0x200), 9);
        assert_eq!(c.lookup(PhysAddr::new(0x200)), None);
    }

    #[test]
    fn capacity_eviction() {
        let mut c = BitmapCache::new(2);
        c.fill(PhysAddr::new(0x0), 0);
        c.fill(PhysAddr::new(0x8), 1);
        c.fill(PhysAddr::new(0x10), 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.lookup(PhysAddr::new(0x0)), None);
        assert_eq!(c.lookup(PhysAddr::new(0x10)), Some(2));
    }

    #[test]
    fn disabled_cache_always_misses() {
        let mut c = BitmapCache::disabled();
        assert!(!c.is_enabled());
        let a = PhysAddr::new(0x100);
        c.fill(a, 7);
        assert_eq!(c.lookup(a), None);
        assert!(c.is_empty());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn hit_rate() {
        let mut c = BitmapCache::new(2);
        assert!(c.stats().hit_rate().is_none());
        c.lookup(PhysAddr::new(0));
        c.fill(PhysAddr::new(0), 0);
        c.lookup(PhysAddr::new(0));
        assert_eq!(c.stats().hit_rate(), Some(0.5));
    }
}
