//! The output ring buffer shared by the MBM (producer) and Hypersec
//! (consumer).
//!
//! "The MBM records the information of the event (address, value) in a
//! ring buffer and raises an interrupt to notify Hypersec" (paper §5.3).
//! The ring lives in the secure region, so the kernel can neither read
//! monitoring results nor suppress them.
//!
//! On-memory layout (all values little-endian u64):
//!
//! ```text
//! base + 0   head  — next index the consumer will read (Hypersec writes)
//! base + 8   tail  — next index the producer will write (MBM writes)
//! base + 16  entry[0]  { addr: u64, value: u64 }           (16 bytes)
//! base + 32  entry[1]  ...
//! ```
//!
//! Indices are monotonically increasing and wrapped modulo the capacity on
//! access, so `tail - head` is always the number of unread events.

use hypernel_machine::addr::PhysAddr;
use hypernel_machine::mem::PhysMemory;

/// A monitored-write event as recorded by the MBM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WriteEvent {
    /// Word-aligned physical address of the monitored write.
    pub addr: PhysAddr,
    /// The value written.
    pub value: u64,
}

/// Geometry and access protocol of the output ring buffer.
///
/// Both sides use this layout against their own view of memory: the MBM
/// writes through its device port (raw [`PhysMemory`]), Hypersec reads
/// through its non-cacheable EL2 mapping (which, being linear, resolves to
/// the same physical words).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingLayout {
    base: PhysAddr,
    capacity: u64,
}

impl RingLayout {
    /// Header bytes before the first entry.
    pub const HEADER_BYTES: u64 = 16;
    /// Bytes per event entry.
    pub const ENTRY_BYTES: u64 = 16;

    /// Creates a ring of `capacity` entries at `base`.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` is a non-zero power of two and `base` is
    /// word-aligned.
    pub fn new(base: PhysAddr, capacity: u64) -> Self {
        assert!(
            capacity.is_power_of_two(),
            "ring capacity must be a power of two"
        );
        assert!(base.is_word_aligned(), "ring base must be word-aligned");
        Self { base, capacity }
    }

    /// Base physical address.
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Total bytes of secure memory the ring occupies.
    pub fn bytes(&self) -> u64 {
        Self::HEADER_BYTES + self.capacity * Self::ENTRY_BYTES
    }

    /// Address of the head (consumer) index word.
    pub fn head_addr(&self) -> PhysAddr {
        self.base
    }

    /// Address of the tail (producer) index word.
    pub fn tail_addr(&self) -> PhysAddr {
        self.base.add(8)
    }

    /// Address of the entry slot for monotonic index `index`.
    pub fn entry_addr(&self, index: u64) -> PhysAddr {
        self.base
            .add(Self::HEADER_BYTES + (index % self.capacity) * Self::ENTRY_BYTES)
    }

    /// Number of unread events.
    pub fn len(&self, mem: &mut PhysMemory) -> u64 {
        let head = mem.read_u64(self.head_addr());
        let tail = mem.read_u64(self.tail_addr());
        tail.wrapping_sub(head)
    }

    /// Returns `true` if no events are waiting.
    pub fn is_empty(&self, mem: &mut PhysMemory) -> bool {
        self.len(mem) == 0
    }

    /// Producer side: appends an event. Returns `false` if the ring is
    /// full (the event is lost — the overflow is the caller's to count).
    pub fn push(&self, mem: &mut PhysMemory, event: WriteEvent) -> bool {
        let head = mem.read_u64(self.head_addr());
        let tail = mem.read_u64(self.tail_addr());
        if tail.wrapping_sub(head) >= self.capacity {
            return false;
        }
        let at = self.entry_addr(tail);
        mem.write_u64(at, event.addr.raw());
        mem.write_u64(at.add(8), event.value);
        mem.write_u64(self.tail_addr(), tail.wrapping_add(1));
        true
    }

    /// Consumer side: removes and returns the oldest event, if any.
    pub fn pop(&self, mem: &mut PhysMemory) -> Option<WriteEvent> {
        let head = mem.read_u64(self.head_addr());
        let tail = mem.read_u64(self.tail_addr());
        if tail == head {
            return None;
        }
        let at = self.entry_addr(head);
        let event = WriteEvent {
            addr: PhysAddr::new(mem.read_u64(at)),
            value: mem.read_u64(at.add(8)),
        };
        mem.write_u64(self.head_addr(), head.wrapping_add(1));
        Some(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rig() -> (RingLayout, PhysMemory) {
        (
            RingLayout::new(PhysAddr::new(0x1000), 4),
            PhysMemory::new(1 << 16),
        )
    }

    fn ev(addr: u64) -> WriteEvent {
        WriteEvent {
            addr: PhysAddr::new(addr),
            value: addr + 1,
        }
    }

    #[test]
    fn push_pop_fifo_order() {
        let (ring, mut mem) = rig();
        assert!(ring.is_empty(&mut mem));
        assert!(ring.push(&mut mem, ev(0x10)));
        assert!(ring.push(&mut mem, ev(0x20)));
        assert_eq!(ring.len(&mut mem), 2);
        assert_eq!(ring.pop(&mut mem), Some(ev(0x10)));
        assert_eq!(ring.pop(&mut mem), Some(ev(0x20)));
        assert_eq!(ring.pop(&mut mem), None);
    }

    #[test]
    fn full_ring_rejects() {
        let (ring, mut mem) = rig();
        for i in 0..4 {
            assert!(ring.push(&mut mem, ev(i * 8)));
        }
        assert!(!ring.push(&mut mem, ev(0x100)));
        // Draining one slot frees space.
        ring.pop(&mut mem);
        assert!(ring.push(&mut mem, ev(0x100)));
    }

    #[test]
    fn wraps_around_many_times() {
        let (ring, mut mem) = rig();
        for i in 0..100u64 {
            assert!(ring.push(&mut mem, ev(i * 8)));
            assert_eq!(ring.pop(&mut mem), Some(ev(i * 8)));
        }
        assert!(ring.is_empty(&mut mem));
    }

    #[test]
    fn layout_geometry() {
        let ring = RingLayout::new(PhysAddr::new(0x1000), 8);
        assert_eq!(ring.bytes(), 16 + 8 * 16);
        assert_eq!(ring.head_addr(), PhysAddr::new(0x1000));
        assert_eq!(ring.tail_addr(), PhysAddr::new(0x1008));
    }

    #[test]
    fn state_is_entirely_in_memory() {
        // A second RingLayout over the same memory sees the same queue —
        // the protocol has no hidden state, which is what lets the MBM and
        // Hypersec share it.
        let (ring, mut mem) = rig();
        ring.push(&mut mem, ev(0x30));
        let alias = RingLayout::new(PhysAddr::new(0x1000), 4);
        assert_eq!(alias.pop(&mut mem), Some(ev(0x30)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        RingLayout::new(PhysAddr::new(0), 3);
    }
}
