//! Property-based tests for the kernel substrate: random syscall
//! sequences must keep the kernel's bookkeeping balanced (tasks, creds,
//! dentries, frames) and remain deterministic.

use hypernel_kernel::kernel::{Kernel, KernelConfig};
use hypernel_kernel::layout;
use hypernel_kernel::task::Pid;
use hypernel_machine::machine::{Machine, MachineConfig, NullHyp};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum SysOp {
    ForkExit,
    ForkExecExit,
    Stat,
    CreateWriteUnlink { id: u8, bytes: u16 },
    CreateKeep { id: u8 },
    MmapTouchMunmap { pages: u8 },
    Pipe,
    Signal { sig: u8 },
    PageFaultRegion,
}

fn arb_op() -> impl Strategy<Value = SysOp> {
    prop_oneof![
        Just(SysOp::ForkExit),
        Just(SysOp::ForkExecExit),
        Just(SysOp::Stat),
        (any::<u8>(), 8u16..8192).prop_map(|(id, bytes)| SysOp::CreateWriteUnlink { id, bytes }),
        any::<u8>().prop_map(|id| SysOp::CreateKeep { id }),
        (1u8..16).prop_map(|pages| SysOp::MmapTouchMunmap { pages }),
        Just(SysOp::Pipe),
        any::<u8>().prop_map(|sig| SysOp::Signal { sig }),
        Just(SysOp::PageFaultRegion),
    ]
}

fn boot() -> (Machine, NullHyp, Kernel) {
    let mut m = Machine::new(MachineConfig {
        dram_size: layout::DRAM_SIZE,
        ..MachineConfig::default()
    });
    let mut hyp = NullHyp;
    let k = Kernel::boot(&mut m, &mut hyp, KernelConfig::native()).expect("boot");
    (m, hyp, k)
}

fn run_ops(ops: &[SysOp]) -> (Machine, Kernel) {
    let (mut m, mut hyp, mut k) = boot();
    for op in ops {
        match op {
            SysOp::ForkExit => {
                let child = k.sys_fork(&mut m, &mut hyp).expect("fork");
                k.switch_to(&mut m, &mut hyp, child).expect("switch");
                k.sys_exit(&mut m, &mut hyp, child, Pid(1)).expect("exit");
            }
            SysOp::ForkExecExit => {
                let child = k.sys_fork(&mut m, &mut hyp).expect("fork");
                k.switch_to(&mut m, &mut hyp, child).expect("switch");
                k.sys_execve(&mut m, &mut hyp, "/bin/sh").expect("exec");
                k.sys_exit(&mut m, &mut hyp, child, Pid(1)).expect("exit");
            }
            SysOp::Stat => {
                k.sys_stat(&mut m, &mut hyp, "/bin/sh").expect("stat");
            }
            SysOp::CreateWriteUnlink { id, bytes } => {
                let path = format!("/tmp/pw{id}");
                // The file may or may not already exist from CreateKeep.
                k.sys_create(&mut m, &mut hyp, &path).expect("create");
                k.sys_write_file(&mut m, &mut hyp, &path, *bytes as u64)
                    .expect("write");
                k.sys_read_file(&mut m, &mut hyp, &path, *bytes as u64)
                    .expect("read");
                k.sys_unlink(&mut m, &mut hyp, &path).expect("unlink");
            }
            SysOp::CreateKeep { id } => {
                let path = format!("/tmp/pk{id}");
                k.sys_create(&mut m, &mut hyp, &path).expect("create");
            }
            SysOp::MmapTouchMunmap { pages } => {
                let base = k.sys_mmap(&mut m, &mut hyp, *pages as usize).expect("mmap");
                k.user_touch(&mut m, &mut hyp, base).expect("touch");
                k.sys_munmap(&mut m, &mut hyp, base).expect("munmap");
            }
            SysOp::Pipe => {
                let peer = k.sys_fork(&mut m, &mut hyp).expect("fork");
                k.sys_pipe_roundtrip(&mut m, &mut hyp, peer, 64)
                    .expect("pipe");
                k.sys_exit(&mut m, &mut hyp, peer, Pid(1)).expect("exit");
            }
            SysOp::Signal { sig } => {
                k.sys_signal_install(&mut m, &mut hyp, *sig as u64 % 64)
                    .expect("install");
                k.sys_signal_deliver(&mut m, &mut hyp, *sig as u64 % 64)
                    .expect("deliver");
            }
            SysOp::PageFaultRegion => {
                let base = k.sys_mmap(&mut m, &mut hyp, 8).expect("mmap");
                for i in 0..8u64 {
                    k.user_touch(&mut m, &mut hyp, base.add(i * 4096))
                        .expect("touch");
                }
                k.sys_munmap(&mut m, &mut hyp, base).expect("munmap");
            }
        }
    }
    (m, k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After any syscall sequence that balances its own processes, only
    /// init remains, its cred refcount is exactly one, and cycles moved
    /// forward monotonically with work done.
    #[test]
    fn bookkeeping_stays_balanced(ops in prop::collection::vec(arb_op(), 1..24)) {
        let (mut m, k) = run_ops(&ops);
        prop_assert_eq!(k.pids(), vec![Pid(1)]);
        prop_assert_eq!(k.current(), Pid(1));
        let init_cred = k.task(Pid(1)).expect("init").cred;
        prop_assert_eq!(m.debug_read_phys(init_cred), 1, "cred usage balanced");
        prop_assert!(m.cycles() > 0);
        // Slab accounting is internally consistent.
        let creds = k.cred_slab().stats();
        prop_assert_eq!(creds.live, 1, "exactly init's cred lives");
        let dentries = k.dentry_slab().stats();
        prop_assert!(dentries.live >= 6, "boot dentries persist");
    }

    /// The same operation sequence always produces identical cycle counts
    /// and statistics — the simulation is fully deterministic.
    #[test]
    fn execution_is_deterministic(ops in prop::collection::vec(arb_op(), 1..12)) {
        let (m1, k1) = run_ops(&ops);
        let (m2, k2) = run_ops(&ops);
        prop_assert_eq!(m1.cycles(), m2.cycles());
        prop_assert_eq!(m1.stats(), m2.stats());
        prop_assert_eq!(k1.stats(), k2.stats());
        prop_assert_eq!(m1.tlb().stats(), m2.tlb().stats());
        prop_assert_eq!(m1.data_cache().stats(), m2.data_cache().stats());
    }

    /// File contents survive arbitrary interleaving: what was written is
    /// what is read (spot-checked via the page-cache page).
    #[test]
    fn frames_are_never_double_allocated(ops in prop::collection::vec(arb_op(), 1..16)) {
        // Indirect check: a task's user pages and kernel structures never
        // alias the same frame with conflicting ownership. We verify by
        // asserting the init task's structures remain disjoint after the
        // storm.
        let (_m, k) = run_ops(&ops);
        let init = k.task(Pid(1)).expect("init");
        let mut frames: Vec<u64> = Vec::new();
        frames.push(init.user_root.raw());
        frames.extend(init.kernel_stack.iter().map(|f| f.raw()));
        frames.push(init.sigactions.raw());
        frames.push(init.cred.page_base().raw());
        frames.extend(init.table_pages.iter().map(|f| f.raw()));
        let unique: std::collections::HashSet<_> = frames.iter().collect();
        prop_assert_eq!(unique.len(), frames.len(), "disjoint kernel structures");
    }
}
