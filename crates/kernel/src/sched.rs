//! A preemptive round-robin scheduler.
//!
//! The benchmark drivers switch tasks explicitly (as LMbench's ping-pong
//! processes do), but a downstream user building longer-running scenarios
//! wants timer-driven preemption: a run queue, a quantum, and a `tick`
//! that charges the timer-interrupt path and rotates the queue. Every
//! context switch goes through [`crate::kernel::Kernel::switch_to`], so
//! under Hypernel each preemption pays the same verified `TTBR0` trap a
//! real system would.

use std::collections::VecDeque;

use hypernel_machine::machine::{Hyp, Machine};

use crate::kernel::{Kernel, KernelError};
use crate::task::Pid;

/// Scheduler statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Timer ticks processed.
    pub ticks: u64,
    /// Preemptive context switches performed.
    pub preemptions: u64,
}

/// Round-robin scheduler over a set of runnable tasks.
///
/// ```
/// use hypernel_kernel::sched::Scheduler;
/// use hypernel_kernel::task::Pid;
///
/// let mut sched = Scheduler::new(3);
/// sched.enqueue(Pid(1));
/// sched.enqueue(Pid(2));
/// assert_eq!(sched.runnable(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler {
    queue: VecDeque<Pid>,
    /// Ticks a task runs before preemption.
    quantum: u32,
    remaining: u32,
    stats: SchedStats,
}

impl Scheduler {
    /// Creates a scheduler with the given quantum (ticks per time slice).
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn new(quantum: u32) -> Self {
        assert!(quantum > 0, "quantum must be non-zero");
        Self {
            queue: VecDeque::new(),
            quantum,
            remaining: quantum,
            stats: SchedStats::default(),
        }
    }

    /// Statistics.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Number of queued (runnable, not running) tasks.
    pub fn runnable(&self) -> usize {
        self.queue.len()
    }

    /// Adds a task to the back of the run queue.
    pub fn enqueue(&mut self, pid: Pid) {
        if !self.queue.contains(&pid) {
            self.queue.push_back(pid);
        }
    }

    /// Removes a task (it exited or blocked).
    pub fn dequeue(&mut self, pid: Pid) {
        self.queue.retain(|p| *p != pid);
    }

    /// One timer tick: charges the timer-interrupt path and, when the
    /// quantum expires and another task is runnable, preempts — the
    /// current task goes to the back of the queue and the head runs.
    ///
    /// Returns the task now running.
    ///
    /// # Errors
    ///
    /// Propagates context-switch failures (e.g. a Hypersec denial of the
    /// `TTBR0` load, which only a corrupted run queue could cause).
    pub fn tick(
        &mut self,
        kernel: &mut Kernel,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
    ) -> Result<Pid, KernelError> {
        self.stats.ticks += 1;
        m.charge_irq(); // the timer interrupt itself
        self.remaining = self.remaining.saturating_sub(1);
        let current = kernel.current();
        if self.remaining > 0 || self.queue.is_empty() {
            return Ok(current);
        }
        self.remaining = self.quantum;
        let next = self.queue.pop_front().expect("checked non-empty");
        if next == current {
            return Ok(current);
        }
        self.queue.push_back(current);
        kernel.switch_to(m, hyp, next)?;
        self.stats.preemptions += 1;
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;
    use crate::layout;
    use hypernel_machine::machine::{MachineConfig, NullHyp};

    fn boot() -> (Machine, NullHyp, Kernel) {
        let mut m = Machine::new(MachineConfig {
            dram_size: layout::DRAM_SIZE,
            ..MachineConfig::default()
        });
        let mut hyp = NullHyp;
        let k = Kernel::boot(&mut m, &mut hyp, KernelConfig::native()).expect("boot");
        (m, hyp, k)
    }

    #[test]
    fn round_robin_rotation() {
        let (mut m, mut hyp, mut k) = boot();
        let a = k.sys_fork(&mut m, &mut hyp).expect("fork");
        let b = k.sys_fork(&mut m, &mut hyp).expect("fork");
        let mut sched = Scheduler::new(2);
        sched.enqueue(a);
        sched.enqueue(b);
        // Quantum 2: first tick stays on init, second preempts to a.
        assert_eq!(sched.tick(&mut k, &mut m, &mut hyp).unwrap(), Pid(1));
        assert_eq!(sched.tick(&mut k, &mut m, &mut hyp).unwrap(), a);
        assert_eq!(k.current(), a);
        // Two more ticks rotate to b, then back around to init.
        sched.tick(&mut k, &mut m, &mut hyp).unwrap();
        assert_eq!(sched.tick(&mut k, &mut m, &mut hyp).unwrap(), b);
        sched.tick(&mut k, &mut m, &mut hyp).unwrap();
        assert_eq!(sched.tick(&mut k, &mut m, &mut hyp).unwrap(), Pid(1));
        assert_eq!(sched.stats().preemptions, 3);
        assert_eq!(sched.stats().ticks, 6);
        // Cleanup.
        k.sys_exit(&mut m, &mut hyp, a, Pid(1)).expect("exit a");
        k.sys_exit(&mut m, &mut hyp, b, Pid(1)).expect("exit b");
    }

    #[test]
    fn lone_task_is_never_preempted() {
        let (mut m, mut hyp, mut k) = boot();
        let mut sched = Scheduler::new(1);
        for _ in 0..5 {
            assert_eq!(sched.tick(&mut k, &mut m, &mut hyp).unwrap(), Pid(1));
        }
        assert_eq!(sched.stats().preemptions, 0);
    }

    #[test]
    fn dequeue_removes_exited_tasks() {
        let (mut m, mut hyp, mut k) = boot();
        let a = k.sys_fork(&mut m, &mut hyp).expect("fork");
        let mut sched = Scheduler::new(1);
        sched.enqueue(a);
        sched.enqueue(a); // duplicate ignored
        assert_eq!(sched.runnable(), 1);
        sched.dequeue(a);
        assert_eq!(sched.runnable(), 0);
        k.sys_exit(&mut m, &mut hyp, a, Pid(1)).expect("exit");
    }

    #[test]
    fn ticks_cost_cycles() {
        let (mut m, mut hyp, mut k) = boot();
        let c0 = m.cycles();
        let mut sched = Scheduler::new(4);
        sched.tick(&mut k, &mut m, &mut hyp).unwrap();
        assert!(m.cycles() > c0, "the timer interrupt is charged");
    }
}
