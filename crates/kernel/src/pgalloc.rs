//! Physical frame allocator.
//!
//! A simple bump-then-freelist allocator over the kernel's frame pool.
//! Deterministic (no randomness) so whole-system runs are reproducible.

use hypernel_machine::addr::{PhysAddr, PAGE_SIZE};

/// Error returned when the frame pool is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfFramesError;

impl std::fmt::Display for OutOfFramesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "physical frame pool exhausted")
    }
}

impl std::error::Error for OutOfFramesError {}

/// Allocator of 4 KiB physical frames.
///
/// ```
/// use hypernel_machine::addr::PhysAddr;
/// use hypernel_kernel::pgalloc::FrameAllocator;
///
/// let mut alloc = FrameAllocator::new(PhysAddr::new(0x10_0000), PhysAddr::new(0x20_0000));
/// let frame = alloc.alloc()?;
/// assert!(frame.is_page_aligned());
/// alloc.free(frame);
/// # Ok::<(), hypernel_kernel::pgalloc::OutOfFramesError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    next: u64,
    end: u64,
    free_list: Vec<PhysAddr>,
    allocated: u64,
    freed: u64,
}

impl FrameAllocator {
    /// Creates an allocator over `[base, end)`.
    ///
    /// # Panics
    ///
    /// Panics unless both bounds are page-aligned and the range is
    /// non-empty.
    pub fn new(base: PhysAddr, end: PhysAddr) -> Self {
        assert!(
            base.is_page_aligned() && end.is_page_aligned(),
            "bounds must be page-aligned"
        );
        assert!(base < end, "empty frame pool");
        Self {
            next: base.raw(),
            end: end.raw(),
            free_list: Vec::new(),
            allocated: 0,
            freed: 0,
        }
    }

    /// Allocates one frame. Fresh (never-used) frames are preferred over
    /// recycled ones — as in a real kernel with ample memory, where the
    /// page allocator keeps handing out cold pages. Under a lazily
    /// populated hypervisor this is what makes every fork/exec keep
    /// paying stage-2 faults, exactly as the paper's KVM baseline does.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFramesError`] when the pool is exhausted.
    pub fn alloc(&mut self) -> Result<PhysAddr, OutOfFramesError> {
        self.allocated += 1;
        if self.next < self.end {
            let frame = PhysAddr::new(self.next);
            self.next += PAGE_SIZE;
            return Ok(frame);
        }
        if let Some(frame) = self.free_list.pop() {
            return Ok(frame);
        }
        self.allocated -= 1;
        Err(OutOfFramesError)
    }

    /// Allocates `n` frames (not necessarily contiguous).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFramesError`] if fewer than `n` frames remain; no
    /// frames are leaked on failure.
    pub fn alloc_many(&mut self, n: usize) -> Result<Vec<PhysAddr>, OutOfFramesError> {
        let mut frames = Vec::with_capacity(n);
        for _ in 0..n {
            match self.alloc() {
                Ok(f) => frames.push(f),
                Err(e) => {
                    for f in frames {
                        self.free(f);
                    }
                    return Err(e);
                }
            }
        }
        Ok(frames)
    }

    /// Returns a frame to the pool.
    pub fn free(&mut self, frame: PhysAddr) {
        debug_assert!(frame.is_page_aligned());
        self.freed += 1;
        self.free_list.push(frame);
    }

    /// Frames currently live (allocated minus freed).
    pub fn live(&self) -> u64 {
        self.allocated - self.freed
    }

    /// Total allocations performed.
    pub fn allocated_total(&self) -> u64 {
        self.allocated
    }

    /// Frames still available without reuse (watermark remaining).
    pub fn remaining_fresh(&self) -> u64 {
        (self.end - self.next) / PAGE_SIZE
    }

    /// The bump watermark: every frame below this address has been handed
    /// out at least once.
    pub fn fresh_watermark(&self) -> PhysAddr {
        PhysAddr::new(self.next)
    }

    /// Frames currently sitting in the free list (allocated once, then
    /// returned) — the ownership sanitizer seeds these as `Free`.
    pub fn free_frames(&self) -> &[PhysAddr] {
        &self.free_list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_frames_preferred_over_recycled() {
        let mut a = FrameAllocator::new(PhysAddr::new(0x1000), PhysAddr::new(0x4000));
        let f1 = a.alloc().unwrap();
        let _f2 = a.alloc().unwrap();
        a.free(f1);
        // A fresh frame remains, so the freed one is NOT reused yet.
        let f3 = a.alloc().unwrap();
        assert_eq!(f3, PhysAddr::new(0x3000));
        // Pool exhausted: now recycling kicks in.
        let f4 = a.alloc().unwrap();
        assert_eq!(f4, f1);
        assert_eq!(a.live(), 3);
    }

    #[test]
    fn exhaustion() {
        let mut a = FrameAllocator::new(PhysAddr::new(0x1000), PhysAddr::new(0x3000));
        a.alloc().unwrap();
        a.alloc().unwrap();
        assert_eq!(a.alloc(), Err(OutOfFramesError));
        assert_eq!(a.remaining_fresh(), 0);
    }

    #[test]
    fn alloc_many_rolls_back_on_failure() {
        let mut a = FrameAllocator::new(PhysAddr::new(0x1000), PhysAddr::new(0x3000));
        assert!(a.alloc_many(3).is_err());
        assert_eq!(a.live(), 0);
        assert_eq!(a.alloc_many(2).unwrap().len(), 2);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            OutOfFramesError.to_string(),
            "physical frame pool exhausted"
        );
    }
}
