//! The hypercall ABI between the instrumented kernel and Hypersec.
//!
//! The paper replaces every kernel page-table write with a hypercall (a la
//! TZ-RKP, §5.2.1), adds hooks through which security applications
//! register memory regions to monitor (§5.3), and inserts a hypercall in
//! the kernel interrupt handler so Hypersec can service MBM interrupts
//! (§6.2). This module defines those calls as a typed enum with a stable
//! `(call, args)` wire encoding, so the kernel crate and the Hypersec
//! crate agree without depending on each other's internals.

use hypernel_machine::addr::{PhysAddr, VirtAddr};

/// Well-known security-application ids.
pub mod sid {
    /// The cred-integrity monitor (paper §7.2).
    pub const CRED_MONITOR: u32 = 1;
    /// The dentry-integrity monitor (paper §7.2).
    pub const DENTRY_MONITOR: u32 = 2;
    /// The composed-system guard: watches channel headers and
    /// protected shared regions derived by `hypernel-compose`.
    pub const COMPOSE_MONITOR: u32 = 3;
}

/// Raw hypercall numbers.
pub mod call {
    /// Write one page-table descriptor (after verification).
    pub const PT_WRITE: u64 = 0x100;
    /// Register a freshly allocated, zeroed page as a page-table page
    /// (it becomes read-only to the kernel). `root != 0` marks it as a
    /// translation root eligible for `TTBR` use.
    pub const PT_REGISTER_TABLE: u64 = 0x101;
    /// Retire a page-table page (it must be unreachable from every
    /// registered root) so its frame can be reused as normal memory.
    pub const PT_UNREGISTER_TABLE: u64 = 0x102;
    /// Finalize boot: Hypersec verifies the kernel tables, write-protects
    /// page-table pages, checks W⊕X and secure-region unmappability, and
    /// arms `HCR_EL2.TVM`.
    pub const LOCK: u64 = 0x110;
    /// Register a monitored region with the MBM (security-app hook).
    pub const MONITOR_REGISTER: u64 = 0x120;
    /// Unregister a monitored region.
    pub const MONITOR_UNREGISTER: u64 = 0x121;
    /// The kernel interrupt handler forwards an MBM interrupt.
    pub const IRQ_NOTIFY: u64 = 0x130;
    /// Ask Hypersec to perform a data write the kernel cannot (the write
    /// landed in a read-only region created by protection-granularity
    /// overreach, e.g. a 2 MiB section that also contains page tables).
    pub const EMULATE_WRITE: u64 = 0x140;
}

/// A typed hypercall request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hypercall {
    /// Write descriptor `value` into entry `index` of the page-table page
    /// at `table`.
    PtWrite {
        /// Physical address of the page-table page.
        table: PhysAddr,
        /// Descriptor index within the table (0..512).
        index: usize,
        /// Raw descriptor value.
        value: u64,
    },
    /// Declare `table` a page-table page; `root` additionally allows it in
    /// `TTBR0_EL1`.
    PtRegisterTable {
        /// Physical address of the new table page (must be zeroed).
        table: PhysAddr,
        /// Whether this page is a translation root.
        root: bool,
    },
    /// Retire a page-table page.
    PtUnregisterTable {
        /// Physical address of the retiring table page.
        table: PhysAddr,
    },
    /// Finalize boot with the kernel root (`TTBR1`) and the initial user
    /// root (`TTBR0`).
    Lock {
        /// Kernel stage-1 root table.
        kernel_root: PhysAddr,
        /// Initial user root table.
        user_root: PhysAddr,
    },
    /// Register `len` bytes at `base` (kernel VA) for monitoring on
    /// behalf of security application `sid`.
    MonitorRegister {
        /// Security-application id.
        sid: u32,
        /// Kernel virtual base of the region.
        base: VirtAddr,
        /// Region length in bytes.
        len: u64,
    },
    /// Remove a previously registered region.
    MonitorUnregister {
        /// Security-application id.
        sid: u32,
        /// Kernel virtual base of the region.
        base: VirtAddr,
        /// Region length in bytes.
        len: u64,
    },
    /// Forward a pending MBM interrupt to Hypersec.
    IrqNotify,
    /// Request an emulated write of `value` to kernel VA `va`.
    EmulateWrite {
        /// Target kernel virtual address.
        va: VirtAddr,
        /// Value to store.
        value: u64,
    },
}

/// Error produced when decoding an unknown or malformed hypercall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeHypercallError {
    /// The unrecognized call number.
    pub call: u64,
}

impl std::fmt::Display for DecodeHypercallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown hypercall {:#x}", self.call)
    }
}

impl std::error::Error for DecodeHypercallError {}

impl Hypercall {
    /// Encodes to the `(call, args)` pair passed through `HVC`.
    pub fn encode(self) -> (u64, [u64; 4]) {
        match self {
            Self::PtWrite {
                table,
                index,
                value,
            } => (call::PT_WRITE, [table.raw(), index as u64, value, 0]),
            Self::PtRegisterTable { table, root } => {
                (call::PT_REGISTER_TABLE, [table.raw(), root as u64, 0, 0])
            }
            Self::PtUnregisterTable { table } => {
                (call::PT_UNREGISTER_TABLE, [table.raw(), 0, 0, 0])
            }
            Self::Lock {
                kernel_root,
                user_root,
            } => (call::LOCK, [kernel_root.raw(), user_root.raw(), 0, 0]),
            Self::MonitorRegister { sid, base, len } => {
                (call::MONITOR_REGISTER, [sid as u64, base.raw(), len, 0])
            }
            Self::MonitorUnregister { sid, base, len } => {
                (call::MONITOR_UNREGISTER, [sid as u64, base.raw(), len, 0])
            }
            Self::IrqNotify => (call::IRQ_NOTIFY, [0, 0, 0, 0]),
            Self::EmulateWrite { va, value } => (call::EMULATE_WRITE, [va.raw(), value, 0, 0]),
        }
    }

    /// Decodes from the `(call, args)` pair.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeHypercallError`] for unknown call numbers.
    pub fn decode(call_nr: u64, args: [u64; 4]) -> Result<Self, DecodeHypercallError> {
        Ok(match call_nr {
            call::PT_WRITE => Self::PtWrite {
                table: PhysAddr::new(args[0]),
                index: args[1] as usize,
                value: args[2],
            },
            call::PT_REGISTER_TABLE => Self::PtRegisterTable {
                table: PhysAddr::new(args[0]),
                root: args[1] != 0,
            },
            call::PT_UNREGISTER_TABLE => Self::PtUnregisterTable {
                table: PhysAddr::new(args[0]),
            },
            call::LOCK => Self::Lock {
                kernel_root: PhysAddr::new(args[0]),
                user_root: PhysAddr::new(args[1]),
            },
            call::MONITOR_REGISTER => Self::MonitorRegister {
                sid: args[0] as u32,
                base: VirtAddr::new(args[1]),
                len: args[2],
            },
            call::MONITOR_UNREGISTER => Self::MonitorUnregister {
                sid: args[0] as u32,
                base: VirtAddr::new(args[1]),
                len: args[2],
            },
            call::IRQ_NOTIFY => Self::IrqNotify,
            call::EMULATE_WRITE => Self::EmulateWrite {
                va: VirtAddr::new(args[0]),
                value: args[1],
            },
            other => return Err(DecodeHypercallError { call: other }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let calls = [
            Hypercall::PtWrite {
                table: PhysAddr::new(0x1000),
                index: 42,
                value: 0xABC,
            },
            Hypercall::PtRegisterTable {
                table: PhysAddr::new(0x2000),
                root: true,
            },
            Hypercall::PtRegisterTable {
                table: PhysAddr::new(0x2000),
                root: false,
            },
            Hypercall::PtUnregisterTable {
                table: PhysAddr::new(0x3000),
            },
            Hypercall::Lock {
                kernel_root: PhysAddr::new(0x4000),
                user_root: PhysAddr::new(0x5000),
            },
            Hypercall::MonitorRegister {
                sid: 7,
                base: VirtAddr::new(0xFFFF_0000_0000_1000),
                len: 128,
            },
            Hypercall::MonitorUnregister {
                sid: 7,
                base: VirtAddr::new(0xFFFF_0000_0000_1000),
                len: 128,
            },
            Hypercall::IrqNotify,
            Hypercall::EmulateWrite {
                va: VirtAddr::new(0xFFFF_0000_0000_2000),
                value: 99,
            },
        ];
        for c in calls {
            let (nr, args) = c.encode();
            assert_eq!(Hypercall::decode(nr, args), Ok(c), "roundtrip of {c:?}");
        }
    }

    #[test]
    fn unknown_call_is_an_error() {
        let err = Hypercall::decode(0xDEAD, [0; 4]).unwrap_err();
        assert_eq!(err.call, 0xDEAD);
        assert!(err.to_string().contains("0xdead"));
    }
}
