//! Attack simulations: what a kernel-level adversary does after
//! exploiting a vulnerability (threat model, paper §4).
//!
//! Each attack is expressed as the exact machine operations a rootkit
//! would perform from EL1 — direct stores through the kernel linear map,
//! forged page-table edits, rogue `TTBR` loads. Whether an attack
//! *succeeds*, is *blocked* (Hypersec denies the operation), or succeeds
//! but is *detected* (the MBM observes the write and a security
//! application flags it) depends entirely on the installed protection —
//! which is what the integration tests assert.

use hypernel_machine::addr::{PhysAddr, PAGE_SIZE};
use hypernel_machine::machine::{Exception, Hyp, Machine};
use hypernel_machine::pagetable::{self, Descriptor, PagePerms};
use hypernel_machine::regs::SysReg;
use hypernel_machine::shadow::PageTag;

use crate::abi::Hypercall;
use crate::kernel::{Kernel, KernelError};
use crate::kobj::{CredField, DentryField, ObjectKind};
use crate::layout;
use crate::pgtable::PtRoute;
use crate::task::Pid;

/// What happened when the attack ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackOutcome {
    /// The malicious operation completed. (Detection, if any, happens
    /// asynchronously through the MBM.)
    Succeeded,
    /// The protection mechanism refused the operation.
    Blocked {
        /// The exception that stopped it.
        why: String,
    },
}

impl AttackOutcome {
    /// Returns `true` if the operation completed.
    pub fn succeeded(&self) -> bool {
        matches!(self, Self::Succeeded)
    }
}

impl std::fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Succeeded => write!(f, "succeeded"),
            Self::Blocked { why } => write!(f, "blocked: {why}"),
        }
    }
}

fn outcome_of(result: Result<(), Exception>) -> AttackOutcome {
    match result {
        Ok(()) => AttackOutcome::Succeeded,
        Err(e) => AttackOutcome::Blocked { why: e.to_string() },
    }
}

/// A single composable attacker action — the unit from which campaign
/// scenarios assemble attacker programs. Each variant names one of the
/// attack primitives below with enough parameters to run it against a
/// booted kernel, so scenario files can express attacks declaratively.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackStep {
    /// [`Kernel::attack_cred_escalation`] against task `pid`.
    CredEscalation {
        /// Victim task.
        pid: u64,
    },
    /// [`Kernel::attack_dentry_hijack`] of `path`.
    DentryHijack {
        /// Cached path whose dentry is redirected.
        path: String,
        /// Forged inode value.
        rogue_inode: u64,
    },
    /// [`Kernel::attack_map_secure_region`] through task `pid`'s user
    /// root table.
    MapSecureRegion {
        /// Task whose user page-table root carries the forged entry.
        pid: u64,
    },
    /// [`Kernel::attack_pt_direct_write`] of `value` into task `pid`'s
    /// user root table.
    PtDirectWrite {
        /// Task whose user page-table root is targeted.
        pid: u64,
        /// Raw descriptor value stored.
        value: u64,
    },
    /// [`Kernel::attack_ttbr_redirect`].
    TtbrRedirect,
    /// [`Kernel::attack_code_injection`].
    CodeInjection,
    /// [`Kernel::attack_text_patch`].
    TextPatch,
    /// [`Kernel::attack_atra`] relocating task `pid`'s cred object.
    AtraCred {
        /// Task whose cred page is shadowed.
        pid: u64,
    },
    /// [`Kernel::attack_atra`] relocating `path`'s dentry.
    AtraDentry {
        /// Cached path whose dentry page is shadowed.
        path: String,
    },
    /// [`Kernel::attack_double_map`] aliasing task `pid`'s cred page.
    DoubleMapCred {
        /// Task whose cred page is double-mapped.
        pid: u64,
    },
    /// [`Kernel::attack_cross_domain_cred_theft`] between two composed
    /// domains.
    CrossDomainCredTheft {
        /// Compromised domain whose cred is forged.
        attacker: String,
        /// Domain whose identity is stolen.
        victim: String,
    },
    /// [`Kernel::attack_shared_region_toctou`] against a composed
    /// shared region.
    SharedRegionToctou {
        /// Composed region whose validated contents are rewritten.
        region: String,
    },
    /// [`Kernel::attack_channel_spoof`] against a composed channel.
    ChannelSpoof {
        /// Composed channel whose header is forged.
        channel: String,
    },
}

impl AttackStep {
    /// Stable kebab-case identifier (scenario files and run records).
    pub fn name(&self) -> &'static str {
        match self {
            Self::CredEscalation { .. } => "cred-escalation",
            Self::DentryHijack { .. } => "dentry-hijack",
            Self::MapSecureRegion { .. } => "map-secure-region",
            Self::PtDirectWrite { .. } => "pt-direct-write",
            Self::TtbrRedirect => "ttbr-redirect",
            Self::CodeInjection => "code-injection",
            Self::TextPatch => "text-patch",
            Self::AtraCred { .. } => "atra-cred",
            Self::AtraDentry { .. } => "atra-dentry",
            Self::DoubleMapCred { .. } => "double-map-cred",
            Self::CrossDomainCredTheft { .. } => "cross-domain-cred-theft",
            Self::SharedRegionToctou { .. } => "shared-region-toctou",
            Self::ChannelSpoof { .. } => "channel-spoof",
        }
    }
}

/// What running one [`AttackStep`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepResult {
    /// Whether the malicious operation completed or was refused.
    pub outcome: AttackOutcome,
    /// Physical span `(base, len)` inside a *monitored* kernel object
    /// that the step wrote (or tried to write), if any. When the outcome
    /// is `Succeeded` and the object is watched, the MBM must have seen
    /// a write in this span — the detection oracle's ground truth.
    pub monitored: Option<(PhysAddr, u64)>,
}

impl Kernel {
    /// **Privilege escalation**: overwrite the sensitive fields of a
    /// task's `cred` with root identity — the classic
    /// `commit_creds(prepare_kernel_cred(0))` rootkit payload, performed
    /// as raw stores through the linear map.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchTask`] for an unknown pid.
    pub fn attack_cred_escalation(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        pid: Pid,
    ) -> Result<AttackOutcome, KernelError> {
        let cred = self.task(pid).ok_or(KernelError::NoSuchTask(pid))?.cred;
        for field in [CredField::Uid, CredField::Euid, CredField::Fsuid] {
            let va = layout::kva(cred.add(field.byte_offset()));
            if let Err(e) = m.write_u64(va, 0, hyp) {
                return Ok(AttackOutcome::Blocked { why: e.to_string() });
            }
        }
        let cap_va = layout::kva(cred.add(CredField::CapEffective.byte_offset()));
        Ok(outcome_of(m.write_u64(cap_va, u64::MAX, hyp)))
    }

    /// **VFS hijack**: redirect a dentry's inode pointer so operations on
    /// the path reach attacker-controlled state (paper footnote 2).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchPath`] if the path is not cached.
    pub fn attack_dentry_hijack(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        path: &str,
        rogue_inode: u64,
    ) -> Result<AttackOutcome, KernelError> {
        let dentry = self
            .dentry_of(path)
            .ok_or_else(|| KernelError::NoSuchPath(path.to_string()))?;
        let va = layout::kva(dentry.add(DentryField::Inode.byte_offset()));
        Ok(outcome_of(m.write_u64(va, rogue_inode, hyp)))
    }

    /// **Secure-region mapping**: try to create a kernel mapping of
    /// Hypersec's memory by submitting a forged leaf descriptor through
    /// the regular page-table update channel (paper §5.2.1's example).
    pub fn attack_map_secure_region(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        table: PhysAddr,
        index: usize,
    ) -> AttackOutcome {
        let desc = Descriptor::Leaf {
            out: PhysAddr::new(layout::SECURE_BASE),
            perms: PagePerms::KERNEL_DATA,
        }
        .encode();
        match self.config().pt_route {
            PtRoute::Hypercall => {
                let (nr, args) = Hypercall::PtWrite {
                    table,
                    index,
                    value: desc,
                }
                .encode();
                outcome_of(m.hvc(nr, args, hyp).map(|_| ()))
            }
            PtRoute::Direct => {
                outcome_of(m.write_u64(layout::kva(table.add(index as u64 * 8)), desc, hyp))
            }
        }
    }

    /// **Direct page-table tampering**: skip the hypercall interface and
    /// store straight into a page-table page via the linear map (what a
    /// rootkit unaware of — or probing — Hypernel would try first).
    pub fn attack_pt_direct_write(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        table: PhysAddr,
        index: usize,
        value: u64,
    ) -> AttackOutcome {
        outcome_of(m.write_u64(layout::kva(table.add(index as u64 * 8)), value, hyp))
    }

    /// **TTBR redirect**: build a private translation root in plain
    /// kernel data memory (those stores are legitimate) and try to load
    /// it into `TTBR0_EL1` — bypassing every verified table (§5.2.2).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::OutOfFrames`] if no frame is available for
    /// the rogue table.
    pub fn attack_ttbr_redirect(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
    ) -> Result<AttackOutcome, KernelError> {
        let rogue = self.alloc_raw_frame()?;
        m.tag_page(rogue, PageTag::KernelData);
        m.debug_zero_page(rogue);
        // An identity block mapping of all low memory, built with plain
        // data stores (nothing illegal about writing one's own page).
        let entry = Descriptor::Leaf {
            out: PhysAddr::new(0),
            perms: PagePerms {
                write: true,
                exec: false,
                user: true,
                cacheable: true,
            },
        }
        .encode();
        if let Err(e) = m.write_u64(layout::kva(rogue), entry, hyp) {
            return Ok(AttackOutcome::Blocked { why: e.to_string() });
        }
        Ok(outcome_of(m.write_sysreg(
            SysReg::TTBR0_EL1,
            rogue.raw(),
            hyp,
        )))
    }

    /// **Kernel code injection**: write shellcode into a kernel data
    /// page, then try to make it executable and run it. W⊕X stops the
    /// direct jump everywhere; the difference between configurations is
    /// the *remap*: a native kernel freely flips its own page
    /// permissions, while Hypersec rejects any writable+executable
    /// mapping (paper §5.2.1's W⊕X policy).
    ///
    /// Returns `Succeeded` only if the injected code actually executed.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::OutOfFrames`] if no scratch frame exists.
    pub fn attack_code_injection(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
    ) -> Result<AttackOutcome, KernelError> {
        let frame = self.alloc_raw_frame()?;
        m.tag_page(frame, PageTag::KernelData);
        m.debug_zero_page(frame);
        let code_va = layout::kva(frame);
        // Step 1: plant the shellcode — a plain data write, always lands.
        if let Err(e) = m.write_u64(code_va, 0xD65F03C0 /* RET */, hyp) {
            return Ok(AttackOutcome::Blocked { why: e.to_string() });
        }
        // Step 2: direct jump — W⊕X page permissions abort the fetch.
        if m.fetch(code_va, hyp).is_ok() {
            return Ok(AttackOutcome::Succeeded);
        }
        // Step 3: remap the page writable+executable through the page
        // table machinery, then retry.
        let write = {
            let mut view = m.pt_view();
            pagetable::plan_protect(
                &mut view,
                self.kernel_root(),
                code_va.raw(),
                PagePerms {
                    write: true,
                    exec: true,
                    user: false,
                    cacheable: true,
                },
            )
        };
        let Some(w) = write else {
            return Ok(AttackOutcome::Blocked {
                why: "shellcode page not mapped".into(),
            });
        };
        let remap = match self.config().pt_route {
            PtRoute::Hypercall => {
                let (nr, args) = Hypercall::PtWrite {
                    table: w.table,
                    index: w.index,
                    value: w.value,
                }
                .encode();
                m.hvc(nr, args, hyp).map(|_| ())
            }
            PtRoute::Direct => m.write_u64(layout::kva(w.addr()), w.value, hyp),
        };
        if let Err(e) = remap {
            return Ok(AttackOutcome::Blocked { why: e.to_string() });
        }
        m.tlbi_va(code_va);
        Ok(match m.fetch(code_va, hyp) {
            Ok(_) => AttackOutcome::Succeeded,
            Err(e) => AttackOutcome::Blocked { why: e.to_string() },
        })
    }

    /// **Kernel text patching**: overwrite an instruction in the kernel
    /// image (inline-hook rootkits). The text is W⊕X, so the store
    /// faults; the attacker then tries (a) Hypersec's write-emulation
    /// channel and (b) remapping the text page writable. A native kernel
    /// remaps freely; Hypersec rejects both (deliberately-RO pages are
    /// not emulatable, and a writable text mapping violates W⊕X... and
    /// the linear-identity + perms rules).
    ///
    /// Returns `Succeeded` only if the text word actually changed.
    pub fn attack_text_patch(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
    ) -> Result<AttackOutcome, KernelError> {
        let target = PhysAddr::new(layout::KERNEL_IMAGE_BASE + 0x1_0000);
        let va = layout::kva(target);
        let payload = 0x1400_0000u64; // an unconditional branch
                                      // Direct store: W^X text mapping aborts it.
        if m.write_u64(va, payload, hyp).is_ok() {
            return Ok(AttackOutcome::Succeeded);
        }
        // Channel (a): the emulation hypercall (only reachable when an
        // EL2 handler exists).
        if self.config().pt_route == PtRoute::Hypercall {
            let (nr, args) = Hypercall::EmulateWrite { va, value: payload }.encode();
            if m.hvc(nr, args, hyp).is_ok() {
                return Ok(AttackOutcome::Succeeded);
            }
        }
        // Channel (b): remap the text page writable, then store.
        let write = {
            let mut view = m.pt_view();
            pagetable::plan_protect(
                &mut view,
                self.kernel_root(),
                va.raw(),
                PagePerms::KERNEL_DATA,
            )
        };
        let Some(w) = write else {
            return Ok(AttackOutcome::Blocked {
                why: "text not mapped".into(),
            });
        };
        let remap = match self.config().pt_route {
            PtRoute::Hypercall => {
                let (nr, args) = Hypercall::PtWrite {
                    table: w.table,
                    index: w.index,
                    value: w.value,
                }
                .encode();
                m.hvc(nr, args, hyp).map(|_| ())
            }
            PtRoute::Direct => m.write_u64(layout::kva(w.addr()), w.value, hyp),
        };
        if let Err(e) = remap {
            return Ok(AttackOutcome::Blocked { why: e.to_string() });
        }
        m.tlbi_va(va);
        Ok(outcome_of(m.write_u64(va, payload, hyp)))
    }

    /// **ATRA** (address translation redirection attack, [Jang et al.,
    /// CCS'14]): relocate a monitored object by remapping the kernel
    /// linear-map page that holds it to a shadow copy. A bare external
    /// monitor keeps watching the stale physical address and goes blind;
    /// Hypersec's linear-identity rule rejects the remap (paper §5.3).
    ///
    /// Returns the shadow frame on success so tests can show the monitor
    /// missed the redirected writes.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::OutOfFrames`] if no shadow frame is
    /// available.
    pub fn attack_atra(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        target: PhysAddr,
    ) -> Result<(AttackOutcome, PhysAddr), KernelError> {
        let shadow = self.alloc_raw_frame()?;
        m.tag_page(shadow, PageTag::KernelData);
        m.debug_zero_page(shadow);
        // Copy the victim page so reads stay consistent post-redirect.
        let src_page = target.page_base();
        for w in 0..(PAGE_SIZE / 8) {
            let v = m.debug_read_phys(src_page.add(w * 8));
            m.debug_write_phys(shadow.add(w * 8), v);
        }
        // Remap the linear-map leaf for the victim page onto the shadow.
        let victim_va = layout::kva(src_page);
        let write = {
            let mut view = m.pt_view();
            pagetable::plan_protect(
                &mut view,
                self.kernel_root(),
                victim_va.raw(),
                PagePerms::KERNEL_DATA,
            )
        };
        let Some(mut w) = write else {
            return Ok((
                AttackOutcome::Blocked {
                    why: "victim page not mapped".into(),
                },
                shadow,
            ));
        };
        w.value = Descriptor::Leaf {
            out: shadow,
            perms: PagePerms::KERNEL_DATA,
        }
        .encode();
        let result = match self.config().pt_route {
            PtRoute::Hypercall => {
                let (nr, args) = Hypercall::PtWrite {
                    table: w.table,
                    index: w.index,
                    value: w.value,
                }
                .encode();
                m.hvc(nr, args, hyp).map(|_| ())
            }
            PtRoute::Direct => m.write_u64(layout::kva(w.addr()), w.value, hyp),
        };
        if result.is_ok() {
            m.tlbi_va(victim_va);
        }
        Ok((outcome_of(result), shadow))
    }

    /// **Double mapping**: alias a scratch page's linear-map leaf onto a
    /// victim page, creating a second writable mapping, then race the
    /// monitor by storing through the alias. The linear-map VA of the
    /// victim still reads consistently, so in-kernel integrity checks
    /// walking the expected VA see nothing amiss. Hypersec's
    /// linear-identity rule (`kva(p)` must map `p`, paper §5.3) rejects
    /// the aliasing remap outright.
    ///
    /// On success the store lands at `target`'s physical word — on the
    /// bus, at the true address — so a *bus-level* monitor still sees it;
    /// the attack defeats VA-based protections, not the MBM.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::OutOfFrames`] if no scratch frame is
    /// available for the alias.
    pub fn attack_double_map(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        target: PhysAddr,
        value: u64,
    ) -> Result<AttackOutcome, KernelError> {
        let alias = self.alloc_raw_frame()?;
        m.tag_page(alias, PageTag::KernelData);
        m.debug_zero_page(alias);
        let alias_va = layout::kva(alias);
        let write = {
            let mut view = m.pt_view();
            pagetable::plan_protect(
                &mut view,
                self.kernel_root(),
                alias_va.raw(),
                PagePerms::KERNEL_DATA,
            )
        };
        let Some(mut w) = write else {
            return Ok(AttackOutcome::Blocked {
                why: "alias page not mapped".into(),
            });
        };
        w.value = Descriptor::Leaf {
            out: target.page_base(),
            perms: PagePerms::KERNEL_DATA,
        }
        .encode();
        let remap = match self.config().pt_route {
            PtRoute::Hypercall => {
                let (nr, args) = Hypercall::PtWrite {
                    table: w.table,
                    index: w.index,
                    value: w.value,
                }
                .encode();
                m.hvc(nr, args, hyp).map(|_| ())
            }
            PtRoute::Direct => m.write_u64(layout::kva(w.addr()), w.value, hyp),
        };
        if let Err(e) = remap {
            return Ok(AttackOutcome::Blocked { why: e.to_string() });
        }
        m.tlbi_va(alias_va);
        // Store through the alias at the victim's in-page offset.
        let off = target.offset_from(target.page_base());
        Ok(outcome_of(m.write_u64(
            layout::kva(alias.add(off)),
            value,
            hyp,
        )))
    }

    /// **Cross-domain credential theft**: a compromised composed
    /// domain forges its own `cred` identity fields to the values read
    /// from another domain's cred — impersonating the victim across a
    /// protection-domain boundary with plain linear-map stores. The
    /// flat scenario model cannot express this: it needs two named
    /// domains to exist. Every cred is a monitored object, so under
    /// Hypernel the forging stores are classic post-commit rewrites.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchDomain`] for unknown domain names.
    pub fn attack_cross_domain_cred_theft(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        attacker: &str,
        victim: &str,
    ) -> Result<AttackOutcome, KernelError> {
        let attacker_pid = self.compose_domain(attacker)?.pid();
        let victim_pid = self.compose_domain(victim)?.pid();
        let forged = self
            .task(attacker_pid)
            .ok_or(KernelError::NoSuchTask(attacker_pid))?
            .cred;
        let stolen = self
            .task(victim_pid)
            .ok_or(KernelError::NoSuchTask(victim_pid))?
            .cred;
        for field in [CredField::Uid, CredField::Euid, CredField::Fsuid] {
            // Reading the victim's identity is unremarkable; *writing*
            // it into the attacker's committed cred is the signature.
            let value = m.debug_read_phys(stolen.add(field.byte_offset()));
            let va = layout::kva(forged.add(field.byte_offset()));
            if let Err(e) = m.write_u64(va, value, hyp) {
                return Ok(AttackOutcome::Blocked { why: e.to_string() });
            }
        }
        Ok(AttackOutcome::Succeeded)
    }

    /// **Shared-region TOCTOU**: rewrite the owner-validated first word
    /// of a composed shared region after the owner stamped it — the
    /// window where a racing sharer swaps checked data for malicious
    /// data. Campaign scenarios race this against the MBM capture
    /// window with `delay-irq` faults. When the region is `protect`ed
    /// the derived watch set covers the page and the rewrite flags;
    /// unprotected or baseline-mode regions absorb it silently.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchRegion`] for unknown region names.
    pub fn attack_shared_region_toctou(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        region: &str,
    ) -> Result<AttackOutcome, KernelError> {
        let info = self.compose_region(region)?;
        let va = layout::kva(info.frames[0]);
        Ok(outcome_of(m.write_u64(va, 0x70C_70D1D, hyp)))
    }

    /// **Channel spoofing**: forge a composed channel's sender word so
    /// messages appear to originate from a different domain — the IPC
    /// analogue of source-address spoofing. The header was written
    /// exactly once by the lowering, so under the derived watch set the
    /// forgery is a rewrite of a watched word.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchChannel`] for unknown channel
    /// names.
    pub fn attack_channel_spoof(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        channel: &str,
    ) -> Result<AttackOutcome, KernelError> {
        let info = self.compose_channel(channel)?;
        let va = layout::kva(info.header_pa());
        Ok(outcome_of(m.write_u64(va, 0xBAD_5EED, hyp)))
    }

    /// Runs one composable [`AttackStep`], resolving its parameters
    /// (pids, paths) against live kernel state.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchTask`] / [`KernelError::NoSuchPath`]
    /// for dangling references and propagates allocation failures from
    /// the underlying primitives.
    pub fn run_attack_step(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        step: &AttackStep,
    ) -> Result<StepResult, KernelError> {
        let cred_of = |k: &mut Kernel, pid: u64| {
            k.task(Pid(pid))
                .map(|t| t.cred)
                .ok_or(KernelError::NoSuchTask(Pid(pid)))
        };
        let dentry_at = |k: &mut Kernel, path: &str| {
            k.dentry_of(path)
                .ok_or_else(|| KernelError::NoSuchPath(path.to_string()))
        };
        Ok(match step {
            AttackStep::CredEscalation { pid } => {
                let cred = cred_of(self, *pid)?;
                StepResult {
                    outcome: self.attack_cred_escalation(m, hyp, Pid(*pid))?,
                    monitored: Some((cred, ObjectKind::Cred.bytes())),
                }
            }
            AttackStep::DentryHijack { path, rogue_inode } => {
                let dentry = dentry_at(self, path)?;
                StepResult {
                    outcome: self.attack_dentry_hijack(m, hyp, path, *rogue_inode)?,
                    monitored: Some((dentry.add(DentryField::Inode.byte_offset()), 8)),
                }
            }
            AttackStep::MapSecureRegion { pid } => {
                let root = self
                    .task(Pid(*pid))
                    .map(|t| t.user_root)
                    .ok_or(KernelError::NoSuchTask(Pid(*pid)))?;
                StepResult {
                    outcome: self.attack_map_secure_region(m, hyp, root, 5),
                    monitored: None,
                }
            }
            AttackStep::PtDirectWrite { pid, value } => {
                let root = self
                    .task(Pid(*pid))
                    .map(|t| t.user_root)
                    .ok_or(KernelError::NoSuchTask(Pid(*pid)))?;
                StepResult {
                    outcome: self.attack_pt_direct_write(m, hyp, root, 5, *value),
                    monitored: None,
                }
            }
            AttackStep::TtbrRedirect => StepResult {
                outcome: self.attack_ttbr_redirect(m, hyp)?,
                monitored: None,
            },
            AttackStep::CodeInjection => StepResult {
                outcome: self.attack_code_injection(m, hyp)?,
                monitored: None,
            },
            AttackStep::TextPatch => StepResult {
                outcome: self.attack_text_patch(m, hyp)?,
                monitored: None,
            },
            AttackStep::AtraCred { pid } => {
                let cred = cred_of(self, *pid)?;
                StepResult {
                    outcome: self.attack_atra(m, hyp, cred)?.0,
                    monitored: None,
                }
            }
            AttackStep::AtraDentry { path } => {
                let dentry = dentry_at(self, path)?;
                StepResult {
                    outcome: self.attack_atra(m, hyp, dentry)?.0,
                    monitored: None,
                }
            }
            AttackStep::DoubleMapCred { pid } => {
                let cred = cred_of(self, *pid)?;
                let euid = cred.add(CredField::Euid.byte_offset());
                StepResult {
                    outcome: self.attack_double_map(m, hyp, euid, 0)?,
                    monitored: Some((euid, 8)),
                }
            }
            AttackStep::CrossDomainCredTheft { attacker, victim } => {
                let forged = {
                    let pid = self.compose_domain(attacker)?.pid();
                    cred_of(self, pid.0)?
                };
                StepResult {
                    outcome: self.attack_cross_domain_cred_theft(m, hyp, attacker, victim)?,
                    monitored: Some((forged, ObjectKind::Cred.bytes())),
                }
            }
            AttackStep::SharedRegionToctou { region } => {
                let word = self.compose_region(region)?.frames[0];
                StepResult {
                    outcome: self.attack_shared_region_toctou(m, hyp, region)?,
                    monitored: Some((word, 8)),
                }
            }
            AttackStep::ChannelSpoof { channel } => {
                let header = self.compose_channel(channel)?.header_pa();
                StepResult {
                    outcome: self.attack_channel_spoof(m, hyp, channel)?,
                    monitored: Some((header, 8)),
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;
    use hypernel_machine::machine::{MachineConfig, NullHyp};

    fn boot() -> (Machine, NullHyp, Kernel) {
        let mut m = Machine::new(MachineConfig {
            dram_size: layout::DRAM_SIZE,
            ..MachineConfig::default()
        });
        let mut hyp = NullHyp;
        let k = Kernel::boot(&mut m, &mut hyp, KernelConfig::native()).expect("boot");
        (m, hyp, k)
    }

    #[test]
    fn native_kernel_is_defenseless_against_cred_escalation() {
        let (mut m, mut hyp, mut k) = boot();
        let outcome = k
            .attack_cred_escalation(&mut m, &mut hyp, Pid(1))
            .expect("attack runs");
        assert!(outcome.succeeded());
        let cred = k.task(Pid(1)).unwrap().cred;
        let euid = m.debug_read_phys(cred.add(CredField::Euid.byte_offset()));
        assert_eq!(euid, 0, "euid forged to root");
    }

    #[test]
    fn native_kernel_allows_dentry_hijack() {
        let (mut m, mut hyp, mut k) = boot();
        let outcome = k
            .attack_dentry_hijack(&mut m, &mut hyp, "/bin/sh", 0xBAD)
            .expect("attack runs");
        assert!(outcome.succeeded());
    }

    #[test]
    fn native_kernel_allows_ttbr_redirect() {
        let (mut m, mut hyp, mut k) = boot();
        let outcome = k
            .attack_ttbr_redirect(&mut m, &mut hyp)
            .expect("attack runs");
        assert!(outcome.succeeded(), "{outcome}");
    }

    #[test]
    fn native_kernel_allows_atra() {
        let (mut m, mut hyp, mut k) = boot();
        let target = k.task(Pid(1)).unwrap().cred;
        let (outcome, shadow) = k
            .attack_atra(&mut m, &mut hyp, target)
            .expect("attack runs");
        assert!(outcome.succeeded(), "{outcome}");
        // Writes through the linear VA now land in the shadow frame.
        let va = layout::kva(target.add(CredField::Euid.byte_offset()));
        m.write_u64(va, 0x1337, &mut hyp).expect("redirected write");
        let off = target.offset_from(target.page_base()) + CredField::Euid.byte_offset();
        assert_eq!(m.debug_read_phys(shadow.add(off)), 0x1337);
        // …while the original physical object is untouched.
        assert_ne!(
            m.debug_read_phys(target.add(CredField::Euid.byte_offset())),
            0x1337
        );
    }

    #[test]
    fn native_kernel_allows_text_patching_via_remap() {
        let (mut m, mut hyp, mut k) = boot();
        let outcome = k.attack_text_patch(&mut m, &mut hyp).expect("attack runs");
        assert!(outcome.succeeded(), "{outcome}");
        let patched = m.debug_read_phys(PhysAddr::new(layout::KERNEL_IMAGE_BASE + 0x1_0000));
        assert_eq!(patched, 0x1400_0000);
    }

    #[test]
    fn native_kernel_allows_code_injection_via_remap() {
        let (mut m, mut hyp, mut k) = boot();
        let outcome = k
            .attack_code_injection(&mut m, &mut hyp)
            .expect("attack runs");
        assert!(outcome.succeeded(), "{outcome}");
    }

    #[test]
    fn native_kernel_allows_double_mapping() {
        let (mut m, mut hyp, mut k) = boot();
        let cred = k.task(Pid(1)).unwrap().cred;
        let euid = cred.add(CredField::Euid.byte_offset());
        let outcome = k
            .attack_double_map(&mut m, &mut hyp, euid, 0x1337)
            .expect("attack runs");
        assert!(outcome.succeeded(), "{outcome}");
        // The aliased store landed on the victim's physical word.
        assert_eq!(m.debug_read_phys(euid), 0x1337);
    }

    #[test]
    fn run_attack_step_resolves_parameters() {
        let (mut m, mut hyp, mut k) = boot();
        let cred = k.task(Pid(1)).unwrap().cred;
        let r = k
            .run_attack_step(&mut m, &mut hyp, &AttackStep::CredEscalation { pid: 1 })
            .expect("step runs");
        assert!(r.outcome.succeeded());
        assert_eq!(r.monitored, Some((cred, ObjectKind::Cred.bytes())));
        let r = k
            .run_attack_step(&mut m, &mut hyp, &AttackStep::TtbrRedirect)
            .expect("step runs");
        assert!(r.outcome.succeeded());
        assert_eq!(r.monitored, None);
        // Dangling references surface as kernel errors, not outcomes.
        assert!(k
            .run_attack_step(&mut m, &mut hyp, &AttackStep::CredEscalation { pid: 999 })
            .is_err());
    }

    #[test]
    fn attack_step_names_are_stable() {
        assert_eq!(
            AttackStep::CredEscalation { pid: 1 }.name(),
            "cred-escalation"
        );
        assert_eq!(
            AttackStep::DoubleMapCred { pid: 1 }.name(),
            "double-map-cred"
        );
        assert_eq!(
            AttackStep::AtraDentry {
                path: "/bin/sh".into()
            }
            .name(),
            "atra-dentry"
        );
    }

    #[test]
    fn outcome_display() {
        assert_eq!(AttackOutcome::Succeeded.to_string(), "succeeded");
        let b = AttackOutcome::Blocked { why: "nope".into() };
        assert_eq!(b.to_string(), "blocked: nope");
        assert!(!b.succeeded());
    }
}
