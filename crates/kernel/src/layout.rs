//! Physical and virtual memory layout of the simulated platform.
//!
//! Mirrors the paper's prototype: DRAM holds the kernel image, a general
//! frame pool, and — at the top — the *secure region* reserved for
//! Hypersec and the MBM's bitmap and ring buffer. The kernel linear map
//! covers everything **except** the secure region; keeping it that way is
//! the isolation invariant Hypersec enforces (paper §5.2).

use hypernel_machine::addr::{PhysAddr, VirtAddr, KERNEL_VA_BASE};

/// Total DRAM size: 2 GiB, as in the paper's performance experiments
/// (§7.1 uses the motherboard's 2 GB DRAM).
pub const DRAM_SIZE: u64 = 2 << 30;

/// Start of the secure region (top 128 MiB of DRAM), matching the 128 MB
/// SDRAM on the paper's LogicTile daughterboard (§6).
pub const SECURE_BASE: u64 = DRAM_SIZE - (128 << 20);

/// Size of the secure region.
pub const SECURE_SIZE: u64 = DRAM_SIZE - SECURE_BASE;

/// Kernel image (text + static data): first 4 MiB of DRAM.
pub const KERNEL_IMAGE_BASE: u64 = 0;
/// Size of the kernel image region.
pub const KERNEL_IMAGE_SIZE: u64 = 4 << 20;

/// General frame pool available to the kernel allocator.
pub const FRAME_POOL_BASE: u64 = KERNEL_IMAGE_BASE + KERNEL_IMAGE_SIZE;
/// End (exclusive) of the kernel frame pool — the secure region starts
/// here.
pub const FRAME_POOL_END: u64 = SECURE_BASE;

// ---------------------------------------------------------------------
// Secure-region internal layout (only Hypersec and the MBM touch these).
// ---------------------------------------------------------------------

/// EL2 page tables and Hypersec private data.
pub const HYPERSEC_PRIVATE_BASE: u64 = SECURE_BASE;
/// Size reserved for Hypersec private data.
pub const HYPERSEC_PRIVATE_SIZE: u64 = 16 << 20;

/// MBM watch bitmap: one bit per 8-byte word of the monitored window
/// (`0..SECURE_BASE`), i.e. `SECURE_BASE / 64` bytes = 30 MiB.
pub const MBM_BITMAP_BASE: u64 = HYPERSEC_PRIVATE_BASE + HYPERSEC_PRIVATE_SIZE;
/// Bitmap storage size.
pub const MBM_BITMAP_SIZE: u64 = SECURE_BASE / 64;

/// MBM output ring buffer.
pub const MBM_RING_BASE: u64 = MBM_BITMAP_BASE + ((MBM_BITMAP_SIZE + 0xFFF) & !0xFFF);
/// Ring capacity in entries (power of two).
pub const MBM_RING_ENTRIES: u64 = 4096;

/// The monitored physical window: all normal-world DRAM.
pub const MBM_WINDOW_BASE: u64 = 0;
/// Length of the monitored window.
pub const MBM_WINDOW_LEN: u64 = SECURE_BASE;

// ---------------------------------------------------------------------
// Virtual layout
// ---------------------------------------------------------------------

/// Base of the kernel linear (direct) mapping: `kva = LINEAR_BASE + pa`.
pub const LINEAR_BASE: u64 = KERNEL_VA_BASE;

/// Base of user program images.
pub const USER_IMAGE_BASE: u64 = 0x0040_0000;
/// Top of the user stack (grows down).
pub const USER_STACK_TOP: u64 = 0x7FFF_F000;

/// Converts a normal-world physical address to its kernel linear-map
/// virtual address.
///
/// # Panics
///
/// Panics if `pa` lies in the secure region — the kernel must never hold
/// a virtual address for secure memory.
pub fn kva(pa: PhysAddr) -> VirtAddr {
    assert!(
        pa.raw() < SECURE_BASE,
        "no kernel mapping exists for secure-region address {pa}"
    );
    VirtAddr::new(LINEAR_BASE + pa.raw())
}

/// Converts a kernel linear-map virtual address back to its physical
/// address.
///
/// # Panics
///
/// Panics if `va` is not a linear-map address.
pub fn pa_of_kva(va: VirtAddr) -> PhysAddr {
    assert!(va.raw() >= LINEAR_BASE, "not a linear-map address: {va}");
    let pa = va.raw() - LINEAR_BASE;
    assert!(
        pa < SECURE_BASE,
        "linear address {va} escapes the mapped range"
    );
    PhysAddr::new(pa)
}

/// Returns `true` if `pa` lies in the secure region.
pub fn is_secure(pa: PhysAddr) -> bool {
    pa.raw() >= SECURE_BASE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // deliberate layout sanity checks
    fn regions_are_disjoint_and_ordered() {
        assert!(KERNEL_IMAGE_BASE + KERNEL_IMAGE_SIZE <= FRAME_POOL_BASE);
        assert!(FRAME_POOL_END <= SECURE_BASE);
        assert!(HYPERSEC_PRIVATE_BASE + HYPERSEC_PRIVATE_SIZE <= MBM_BITMAP_BASE);
        assert!(MBM_BITMAP_BASE + MBM_BITMAP_SIZE <= MBM_RING_BASE);
        let ring_bytes = 16 + MBM_RING_ENTRIES * 16;
        assert!(MBM_RING_BASE + ring_bytes <= DRAM_SIZE);
    }

    #[test]
    fn bitmap_covers_whole_normal_world() {
        // One bit per word of the window.
        assert_eq!(MBM_BITMAP_SIZE, MBM_WINDOW_LEN / 8 / 8);
        assert_eq!(MBM_WINDOW_BASE, 0);
        assert_eq!(MBM_WINDOW_LEN, SECURE_BASE);
    }

    #[test]
    fn kva_roundtrip() {
        let pa = PhysAddr::new(0x12_3456);
        assert_eq!(pa_of_kva(kva(pa)), pa);
        assert_eq!(kva(pa).raw(), KERNEL_VA_BASE + 0x12_3456);
    }

    #[test]
    #[should_panic(expected = "secure-region")]
    fn kva_of_secure_memory_panics() {
        kva(PhysAddr::new(SECURE_BASE));
    }

    #[test]
    fn secure_predicate() {
        assert!(!is_secure(PhysAddr::new(SECURE_BASE - 1)));
        assert!(is_secure(PhysAddr::new(SECURE_BASE)));
        assert!(is_secure(PhysAddr::new(DRAM_SIZE - 1)));
    }
}
