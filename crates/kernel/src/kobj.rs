//! Kernel object layouts: `cred` and `dentry`.
//!
//! These are the two objects the paper's security solution monitors
//! (§7.2, footnote 2): corrupting a `cred` elevates a process to root;
//! seizing a `dentry` redirects VFS operations. The layouts below follow
//! the Linux 3.10 structures in spirit — field-for-field fidelity is not
//! required, but two properties that drive Table 2 are preserved:
//!
//! 1. **Sensitivity is sparse**: only some fields are security-sensitive
//!    (IDs/capabilities in `cred`; identity/redirection pointers in
//!    `dentry`), and they sit interleaved with frequently-written
//!    bookkeeping fields (reference counts, LRU links, seq counters).
//! 2. **Write skew**: sensitive fields are written essentially only at
//!    object construction, while bookkeeping fields churn on every use —
//!    which is why word-granularity monitoring eliminates most traps.

/// Discriminates the monitored kernel object types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// Process credentials (`struct cred`).
    Cred,
    /// Directory cache entry (`struct dentry`).
    Dentry,
}

impl ObjectKind {
    /// Object size in 8-byte words.
    pub fn words(self) -> u64 {
        match self {
            Self::Cred => CredField::WORDS,
            Self::Dentry => DentryField::WORDS,
        }
    }

    /// Object size in bytes.
    pub fn bytes(self) -> u64 {
        self.words() * 8
    }

    /// Contiguous runs of sensitive words as `(word_offset, word_count)` —
    /// the regions a sensitive-fields-only security solution registers
    /// with Hypersec (one `MONITOR_REGISTER` hypercall per run).
    pub fn sensitive_ranges(self) -> Vec<(u64, u64)> {
        let mut offsets = self.sensitive_offsets();
        offsets.sort_unstable();
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for o in offsets {
            match runs.last_mut() {
                Some((start, count)) if *start + *count == o => *count += 1,
                _ => runs.push((o, 1)),
            }
        }
        runs
    }

    /// Word offsets (within the object) of the security-sensitive fields.
    pub fn sensitive_offsets(self) -> Vec<u64> {
        match self {
            Self::Cred => CredField::ALL
                .iter()
                .filter(|f| f.is_sensitive())
                .map(|f| f.offset())
                .collect(),
            Self::Dentry => DentryField::ALL
                .iter()
                .filter(|f| f.is_sensitive())
                .map(|f| f.offset())
                .collect(),
        }
    }
}

impl std::fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Cred => write!(f, "cred"),
            Self::Dentry => write!(f, "dentry"),
        }
    }
}

macro_rules! object_fields {
    (
        $(#[$doc:meta])*
        $name:ident, words = $words:expr, {
            $($variant:ident => ($offset:expr, $sensitive:expr, $fdoc:literal)),+ $(,)?
        }
    ) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum $name {
            $(#[doc = $fdoc] $variant),+
        }

        impl $name {
            /// Object size in 8-byte words.
            pub const WORDS: u64 = $words;

            /// Every field, in layout order.
            pub const ALL: &'static [$name] = &[$($name::$variant),+];

            /// Word offset of the field within the object.
            pub const fn offset(self) -> u64 {
                match self {
                    $($name::$variant => $offset),+
                }
            }

            /// Byte offset of the field within the object.
            pub const fn byte_offset(self) -> u64 {
                self.offset() * 8
            }

            /// `true` if corrupting this field subverts security (the
            /// word-granularity monitor watches exactly these).
            pub const fn is_sensitive(self) -> bool {
                match self {
                    $($name::$variant => $sensitive),+
                }
            }
        }
    };
}

object_fields! {
    /// Fields of `struct cred` (16 words / 128 bytes).
    ///
    /// The identity and capability fields are sensitive; the reference
    /// count and RCU bookkeeping churn constantly and are not.
    CredField, words = 16, {
        Usage => (0, false, "reference count (`atomic_t usage`) — churns on every get/put"),
        Uid => (1, true, "real user id"),
        Gid => (2, true, "real group id"),
        Suid => (3, true, "saved user id"),
        Sgid => (4, true, "saved group id"),
        Euid => (5, true, "effective user id — the classic escalation target"),
        Egid => (6, true, "effective group id"),
        Fsuid => (7, true, "filesystem user id"),
        Fsgid => (8, true, "filesystem group id"),
        Securebits => (9, true, "secure-bits flags"),
        CapInheritable => (10, true, "inheritable capability set"),
        CapPermitted => (11, true, "permitted capability set"),
        CapEffective => (12, true, "effective capability set"),
        CapBset => (13, true, "capability bounding set"),
        RcuNext => (14, false, "RCU free-list link"),
        RcuFunc => (15, false, "RCU callback pointer"),
    }
}

object_fields! {
    /// Fields of `struct dentry` (24 words / 192 bytes).
    ///
    /// Identity/redirection fields (`d_parent`, `d_inode`, `d_op`, name
    /// hash, flags) are sensitive; lockref/LRU/list bookkeeping is not.
    DentryField, words = 24, {
        Count => (0, false, "lockref count — churns on every path walk"),
        Flags => (1, true, "dentry flags (negative/positive, type bits)"),
        Seq => (2, false, "RCU-walk sequence counter"),
        HashNext => (3, false, "hash-chain link"),
        NameHash => (4, true, "full name hash — redirects lookups if forged"),
        NameLen => (5, false, "name length"),
        Parent => (6, true, "parent dentry pointer"),
        Inode => (7, true, "inode pointer — the paper's hijack target"),
        Op => (8, true, "dentry operations vtable pointer"),
        Sb => (9, false, "superblock pointer"),
        Time => (10, false, "revalidation timestamp"),
        Fsdata => (11, false, "filesystem private data"),
        LruPrev => (12, false, "LRU list backward link"),
        LruNext => (13, false, "LRU list forward link"),
        ChildPrev => (14, false, "sibling list backward link"),
        ChildNext => (15, false, "sibling list forward link"),
        SubdirsHead => (16, false, "children list head"),
        SubdirsTail => (17, false, "children list tail"),
        AliasPrev => (18, false, "inode alias list backward link"),
        AliasNext => (19, false, "inode alias list forward link"),
        Iname0 => (20, false, "inline short name, word 0"),
        Iname1 => (21, false, "inline short name, word 1"),
        Iname2 => (22, false, "inline short name, word 2"),
        Iname3 => (23, false, "inline short name, word 3"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn cred_layout_is_dense_and_unique() {
        let offsets: HashSet<u64> = CredField::ALL.iter().map(|f| f.offset()).collect();
        assert_eq!(offsets.len(), CredField::ALL.len());
        assert_eq!(CredField::ALL.len() as u64, CredField::WORDS);
        assert!(offsets.iter().all(|&o| o < CredField::WORDS));
    }

    #[test]
    fn dentry_layout_is_dense_and_unique() {
        let offsets: HashSet<u64> = DentryField::ALL.iter().map(|f| f.offset()).collect();
        assert_eq!(offsets.len(), DentryField::ALL.len());
        assert_eq!(DentryField::ALL.len() as u64, DentryField::WORDS);
    }

    #[test]
    fn sensitivity_is_sparse_in_dentry() {
        let sensitive = ObjectKind::Dentry.sensitive_offsets();
        assert_eq!(sensitive.len(), 5);
        assert!(sensitive.contains(&DentryField::Inode.offset()));
        assert!(sensitive.contains(&DentryField::Parent.offset()));
        assert!(!sensitive.contains(&DentryField::Count.offset()));
    }

    #[test]
    fn cred_ids_and_caps_are_sensitive() {
        assert!(CredField::Euid.is_sensitive());
        assert!(CredField::CapEffective.is_sensitive());
        assert!(!CredField::Usage.is_sensitive());
        assert_eq!(ObjectKind::Cred.sensitive_offsets().len(), 13);
    }

    #[test]
    fn sizes() {
        assert_eq!(ObjectKind::Cred.bytes(), 128);
        assert_eq!(ObjectKind::Dentry.bytes(), 192);
        assert_eq!(DentryField::Inode.byte_offset(), 56);
    }

    #[test]
    fn display() {
        assert_eq!(ObjectKind::Cred.to_string(), "cred");
        assert_eq!(ObjectKind::Dentry.to_string(), "dentry");
    }

    #[test]
    fn sensitive_ranges_are_contiguous_runs() {
        // Cred: words 1..=13 form one run.
        assert_eq!(ObjectKind::Cred.sensitive_ranges(), vec![(1, 13)]);
        // Dentry: Flags(1), NameHash(4), Parent/Inode/Op(6..=8).
        assert_eq!(
            ObjectKind::Dentry.sensitive_ranges(),
            vec![(1, 1), (4, 1), (6, 3)]
        );
    }
}
