//! The mini monolithic kernel.
//!
//! [`Kernel`] drives the simulated machine the way Linux 3.10 drives the
//! Juno board in the paper: it boots (builds the linear map, creates the
//! init task, optionally hands control of its page tables to Hypersec via
//! the `LOCK` hypercall), services syscalls, schedules tasks, manages
//! `cred`/`dentry` objects through slab caches, and — when instrumented —
//! reports monitored-object lifecycles to Hypersec through the hooks the
//! paper describes (§5.3, §6.2).
//!
//! The cycle calibration constants live in [`tuning`]; see EXPERIMENTS.md
//! for how they were chosen.

use std::collections::HashMap;

use hypernel_machine::addr::{PhysAddr, VirtAddr, PAGE_SIZE};
use hypernel_machine::irq::IrqLine;
use hypernel_machine::machine::{BlockFault, Exception, Hyp, Machine};
use hypernel_machine::pagetable::PagePerms;
use hypernel_machine::regs::{sctlr, ExceptionLevel, SysReg};
use hypernel_machine::shadow::PageTag;
use hypernel_telemetry::SpanKind;

use crate::abi::Hypercall;
use crate::compose::{
    compose_stamp, ChannelInfo, ComposeState, ComposeStats, DomainInfo, DomainRole, RegionInfo,
    CHANNEL_HEADER_BYTES, MAX_CHANNELS,
};
use crate::kobj::{CredField, DentryField, ObjectKind};
use crate::layout;
use crate::pgalloc::FrameAllocator;
use crate::pgtable::{build_linear_map, LinearMapMode, PtError, PtManager, PtRoute};
use crate::slab::SlabCache;
use crate::task::{Fd, Pid, Task, Vma};

/// Calibration constants (cycles) for kernel operations, chosen so the
/// *native* configuration lands near the paper's Table 1 and the relative
/// overheads of KVM/Hypernel emerge from mechanism, not fiat.
pub mod tuning {
    /// Fixed syscall-path compute beyond the hardware round trip.
    pub const SYSCALL_COMPUTE: u64 = 120;
    /// `stat` path-resolution and inode compute.
    pub const STAT_COMPUTE: u64 = 1500;
    /// Per path component hashing/locking compute.
    pub const PATH_COMPONENT_COMPUTE: u64 = 90;
    /// `sigaction` bookkeeping.
    pub const SIGNAL_INSTALL_COMPUTE: u64 = 340;
    /// Signal delivery + `sigreturn` compute.
    pub const SIGNAL_DELIVER_COMPUTE: u64 = 2500;
    /// Scheduler + context-switch bookkeeping.
    pub const SCHED_COMPUTE: u64 = 900;
    /// Pipe read/write bookkeeping per end.
    pub const PIPE_COMPUTE: u64 = 2000;
    /// Extra protocol processing for a local socket round trip.
    pub const SOCKET_EXTRA_COMPUTE: u64 = 4200;
    /// `fork` fixed compute (task struct, namespaces, accounting).
    pub const FORK_COMPUTE: u64 = 212_000;
    /// `exit` fixed compute.
    pub const EXIT_COMPUTE: u64 = 90_000;
    /// `execve` fixed compute (ELF parsing, setup).
    pub const EXEC_COMPUTE: u64 = 10_000;
    /// Page-fault handler compute (vma lookup, accounting).
    pub const FAULT_COMPUTE: u64 = 1100;
    /// `mmap`/`munmap` fixed compute (VMA bookkeeping, file refs).
    pub const MMAP_COMPUTE: u64 = 18_000;
    /// `clear_page` cost for a freshly allocated frame.
    pub const CLEAR_PAGE_COMPUTE: u64 = 350;
    /// File create (inode allocation etc.) compute.
    pub const CREATE_COMPUTE: u64 = 2_500;
    /// Per-4KiB file data copy compute (on top of the modeled stores).
    pub const FILE_COPY_COMPUTE_PER_PAGE: u64 = 400;
    /// Number of user image pages mapped per process.
    pub const USER_IMAGE_PAGES: usize = 64;
    /// Pages of the new image `execve` maps eagerly (the rest are
    /// demand-paged from the binary's page-cache pages).
    pub const EXEC_EAGER_PAGES: usize = 24;
    /// Pages eagerly mapped (and unmapped) by the `mmap` benchmark path.
    pub const MMAP_EAGER_PAGES: usize = 4;
    /// Size of the warm page-cache pool backing demand faults.
    pub const PAGE_CACHE_FRAMES: usize = 64;
    /// Every Nth page-cache allocation takes a cold fresh frame (cache
    /// growth), which costs a lazy stage-2 fault under KVM.
    pub const PAGE_CACHE_GROWTH_PERIOD: usize = 32;
    /// A dget touches rotate the LRU every this many references.
    pub const LRU_ROTATE_PERIOD: u64 = 8;
    /// A dentry's first references take the write-heavy ref-walk path.
    pub const REF_WALK_WARMUP: u64 = 16;
    /// Afterwards, only every Nth reference falls back to ref-walk; the
    /// rest are RCU-walk and write nothing.
    pub const REF_WALK_PERIOD: u64 = 12;
}

/// Which monitoring policy the kernel's security hooks report (paper
/// §7.2's two security solutions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MonitorMode {
    /// Register only the sensitive fields of each object
    /// (word-granularity monitoring).
    SensitiveFields,
    /// Register every field of each object — the paper's estimator for
    /// page-granularity monitoring.
    WholeObject,
}

/// Security-hook configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorHooks {
    /// Monitoring policy.
    pub mode: MonitorMode,
}

/// Kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Linear-map construction mode (paper §6.2).
    pub linear_map: LinearMapMode,
    /// Post-boot page-table write route.
    pub pt_route: PtRoute,
    /// Whether the interrupt handler forwards MBM interrupts to Hypersec.
    pub forward_irq: bool,
    /// Security hooks for `cred`/`dentry` monitoring, if any.
    pub monitor_hooks: Option<MonitorHooks>,
}

impl KernelConfig {
    /// The vanilla kernel: direct page-table writes, no hooks.
    pub fn native() -> Self {
        Self {
            linear_map: LinearMapMode::Pages,
            pt_route: PtRoute::Direct,
            forward_irq: false,
            monitor_hooks: None,
        }
    }

    /// The instrumented kernel for the Hypernel configuration.
    pub fn hypernel() -> Self {
        Self {
            linear_map: LinearMapMode::Pages,
            pt_route: PtRoute::Hypercall,
            forward_irq: true,
            monitor_hooks: None,
        }
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self::native()
    }
}

/// Kernel event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Syscalls serviced.
    pub syscalls: u64,
    /// Forks performed.
    pub forks: u64,
    /// Execs performed.
    pub execs: u64,
    /// Exits performed.
    pub exits: u64,
    /// Context switches.
    pub context_switches: u64,
    /// Demand page faults handled.
    pub page_faults: u64,
    /// Files created.
    pub files_created: u64,
    /// Interrupts forwarded to Hypersec.
    pub irqs_forwarded: u64,
    /// Data writes emulated by Hypersec due to protection-granularity
    /// overreach (section-mode linear map).
    pub emulated_writes: u64,
    /// Monitor-registration hypercalls issued by the hooks.
    pub monitor_registrations: u64,
}

impl KernelStats {
    /// Syscall-family counters: the families with dedicated counters
    /// plus the residual `other` bucket (stat/signal/mmap traffic and
    /// everything else), summing to `syscalls`.
    pub fn syscall_families(&self) -> [(&'static str, u64); 4] {
        let dedicated = self.forks + self.execs + self.exits;
        [
            ("fork", self.forks),
            ("exec", self.execs),
            ("exit", self.exits),
            ("other", self.syscalls.saturating_sub(dedicated)),
        ]
    }
}

/// Errors surfaced by kernel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// A machine exception the kernel could not resolve.
    Machine(Exception),
    /// Page-table management failed.
    Pt(PtError),
    /// Out of physical frames.
    OutOfFrames,
    /// Path lookup failed.
    NoSuchPath(String),
    /// Unknown pid.
    NoSuchTask(Pid),
    /// Unknown composed protection domain.
    NoSuchDomain(String),
    /// Unknown composed channel.
    NoSuchChannel(String),
    /// Unknown composed shared region.
    NoSuchRegion(String),
    /// A compose description exceeded a lowering limit.
    ComposeLimit(String),
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Machine(e) => write!(f, "machine exception: {e}"),
            Self::Pt(e) => write!(f, "page-table error: {e}"),
            Self::OutOfFrames => write!(f, "out of physical frames"),
            Self::NoSuchPath(p) => write!(f, "no such path: {p}"),
            Self::NoSuchTask(pid) => write!(f, "no such task: {pid}"),
            Self::NoSuchDomain(name) => write!(f, "no such protection domain: {name}"),
            Self::NoSuchChannel(name) => write!(f, "no such channel: {name}"),
            Self::NoSuchRegion(name) => write!(f, "no such shared region: {name}"),
            Self::ComposeLimit(what) => write!(f, "compose lowering limit: {what}"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<Exception> for KernelError {
    fn from(e: Exception) -> Self {
        Self::Machine(e)
    }
}

impl From<PtError> for KernelError {
    fn from(e: PtError) -> Self {
        Self::Pt(e)
    }
}

impl From<crate::pgalloc::OutOfFramesError> for KernelError {
    fn from(_: crate::pgalloc::OutOfFramesError) -> Self {
        Self::OutOfFrames
    }
}

/// Modeled address of an installed user signal handler.
const SIGNAL_HANDLER_ADDR: u64 = 0x40_2000;

/// The kernel.
///
/// `Clone` deep-copies every allocator, slab and task table, so a booted
/// kernel can be snapshotted alongside its machine for warm-boot forking.
#[derive(Debug, Clone)]
pub struct Kernel {
    config: KernelConfig,
    frames: FrameAllocator,
    pt: PtManager,
    kernel_root: PhysAddr,
    creds: SlabCache,
    dentries: SlabCache,
    tasks: HashMap<Pid, Task>,
    current: Pid,
    next_pid: u64,
    next_asid: u16,
    dcache: HashMap<String, PhysAddr>,
    file_data: HashMap<PhysAddr, PhysAddr>, // dentry -> data page
    page_cache: Vec<PhysAddr>,
    page_cache_cursor: usize,
    pipe_buffer: PhysAddr,
    lru_tick: u64,
    dentry_heat: HashMap<u64, u64>,
    next_mmap_va: u64,
    mmap_count: u64,
    compose: ComposeState,
    stats: KernelStats,
    locked: bool,
}

impl Kernel {
    /// Boots the kernel on `m`: builds the linear map, creates the init
    /// task and — when configured for Hypernel — issues the `LOCK`
    /// hypercall that hands page-table control to Hypersec.
    ///
    /// The machine must have at least [`layout::DRAM_SIZE`] of DRAM. On
    /// return the machine executes at EL1 with the MMU on and the init
    /// task current.
    ///
    /// # Errors
    ///
    /// Fails if memory is exhausted or EL2 software rejects the `LOCK`.
    pub fn boot(
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        config: KernelConfig,
    ) -> Result<Self, KernelError> {
        let mut frames = FrameAllocator::new(
            PhysAddr::new(layout::FRAME_POOL_BASE),
            PhysAddr::new(layout::FRAME_POOL_END),
        );
        let kernel_root = frames.alloc()?;
        build_linear_map(m, &mut frames, kernel_root, config.linear_map)?;

        // Install translation state. Boot runs before TVM is armed, so
        // these writes are direct even in the Hypernel configuration.
        m.set_el(ExceptionLevel::El1);
        m.write_sysreg(SysReg::TTBR1_EL1, kernel_root.raw(), hyp)?;
        m.write_sysreg(SysReg::SCTLR_EL1, sctlr::M, hyp)?;

        let mut kernel = Self {
            config,
            frames,
            pt: PtManager::new(PtRoute::Direct),
            kernel_root,
            creds: SlabCache::new(ObjectKind::Cred),
            dentries: SlabCache::new(ObjectKind::Dentry),
            tasks: HashMap::new(),
            current: Pid(1),
            next_pid: 1,
            next_asid: 1,
            dcache: HashMap::new(),
            file_data: HashMap::new(),
            page_cache: Vec::new(),
            page_cache_cursor: 0,
            pipe_buffer: PhysAddr::new(0),
            lru_tick: 0,
            dentry_heat: HashMap::new(),
            next_mmap_va: 0x2000_0000,
            mmap_count: 0,
            compose: ComposeState::new(),
            stats: KernelStats::default(),
            locked: false,
        };

        // Warm page-cache pool for demand faults (physically resident,
        // like file pages already in the page cache).
        kernel.page_cache = kernel.frames.alloc_many(tuning::PAGE_CACHE_FRAMES)?;
        kernel.pipe_buffer = kernel.frames.alloc()?;

        // Root filesystem skeleton.
        for path in ["/", "/bin", "/etc", "/tmp", "/usr", "/bin/sh"] {
            kernel.create_dentry_at(m, hyp, path)?;
        }

        // Init task.
        let init = kernel.spawn_task(m, hyp)?;
        kernel.current = init;
        let task = &kernel.tasks[&init];
        let ttbr0 = task.user_root.raw() | (task.asid as u64) << 48;
        m.write_sysreg(SysReg::TTBR0_EL1, ttbr0, hyp)?;

        // Hand over to Hypersec.
        if config.pt_route == PtRoute::Hypercall {
            let user_root = kernel.tasks[&init].user_root;
            let (nr, args) = Hypercall::Lock {
                kernel_root,
                user_root,
            }
            .encode();
            m.hvc(nr, args, hyp)?;
            kernel.pt.set_route(PtRoute::Hypercall);
            kernel.locked = true;
        }
        Ok(kernel)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The kernel configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Event counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Page-table statistics.
    pub fn pt_stats(&self) -> crate::pgtable::PtStats {
        self.pt.stats()
    }

    /// The kernel (TTBR1) translation root.
    pub fn kernel_root(&self) -> PhysAddr {
        self.kernel_root
    }

    /// Highest physical frame address the allocator has handed out — the
    /// region a hypervisor should treat as warm after boot.
    pub fn frames_watermark(&self) -> PhysAddr {
        self.frames.fresh_watermark()
    }

    /// Allocates one raw frame from the kernel pool (scratch memory for
    /// attack simulations and tests).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::OutOfFrames`] when the pool is exhausted.
    pub fn alloc_raw_frame(&mut self) -> Result<PhysAddr, KernelError> {
        Ok(self.frames.alloc()?)
    }

    /// The currently running task.
    pub fn current(&self) -> Pid {
        self.current
    }

    /// The task table entry for `pid`.
    pub fn task(&self, pid: Pid) -> Option<&Task> {
        self.tasks.get(&pid)
    }

    /// Live pids, sorted.
    pub fn pids(&self) -> Vec<Pid> {
        let mut v: Vec<Pid> = self.tasks.keys().copied().collect();
        v.sort();
        v
    }

    /// Physical roots of every live user address space, in pid order —
    /// the kernel-known ground truth a static auditor compares the
    /// active `TTBR0_EL1` against.
    pub fn user_roots(&self) -> Vec<PhysAddr> {
        self.pids()
            .into_iter()
            .filter_map(|pid| self.tasks.get(&pid))
            .map(|t| t.user_root)
            .collect()
    }

    /// Frames currently in the allocator's free list (see
    /// [`crate::pgalloc::FrameAllocator::free_frames`]).
    pub fn free_frames(&self) -> &[PhysAddr] {
        self.frames.free_frames()
    }

    /// The dentry slab (for inspection, e.g. by page-granularity
    /// baselines that must know the backing pages).
    pub fn dentry_slab(&self) -> &SlabCache {
        &self.dentries
    }

    /// The cred slab.
    pub fn cred_slab(&self) -> &SlabCache {
        &self.creds
    }

    /// Physical address of `path`'s dentry, if cached.
    pub fn dentry_of(&self, path: &str) -> Option<PhysAddr> {
        self.dcache.get(path).copied()
    }

    /// Enables or replaces the security hooks at runtime (used by the
    /// monitoring experiments after boot). Prefer
    /// [`Kernel::arm_monitor_hooks`], which also registers the objects
    /// that already exist.
    pub fn set_monitor_hooks(&mut self, hooks: Option<MonitorHooks>) {
        self.config.monitor_hooks = hooks;
    }

    /// Arms the security hooks and sweeps every live `cred` and `dentry`
    /// into the monitor — the paper's solution protects the objects that
    /// exist when it starts, not only future allocations.
    ///
    /// # Errors
    ///
    /// Propagates hypercall denials.
    pub fn arm_monitor_hooks(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        hooks: MonitorHooks,
    ) -> Result<(), KernelError> {
        self.config.monitor_hooks = Some(hooks);
        let dentries: Vec<PhysAddr> = self.dcache.values().copied().collect();
        for d in dentries {
            self.hook_register_object(m, hyp, ObjectKind::Dentry, d, true)?;
        }
        let mut creds: Vec<PhysAddr> = self.tasks.values().map(|t| t.cred).collect();
        creds.sort();
        creds.dedup();
        for c in creds {
            self.hook_register_object(m, hyp, ObjectKind::Cred, c, true)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Composed multi-domain systems (`hypernel-compose` lowering targets)
    // ------------------------------------------------------------------

    /// The composed-system registry (domains, channels, regions).
    pub fn compose_state(&self) -> &ComposeState {
        &self.compose
    }

    /// Compose lowering counters.
    pub fn compose_stats(&self) -> ComposeStats {
        self.compose.stats
    }

    /// Resolves a composed protection domain by name.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchDomain`] for unknown names.
    pub fn compose_domain(&self, name: &str) -> Result<DomainInfo, KernelError> {
        self.compose
            .domain(name)
            .cloned()
            .ok_or_else(|| KernelError::NoSuchDomain(name.to_string()))
    }

    /// Resolves a composed channel by name.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchChannel`] for unknown names.
    pub fn compose_channel(&self, name: &str) -> Result<ChannelInfo, KernelError> {
        self.compose
            .channel(name)
            .cloned()
            .ok_or_else(|| KernelError::NoSuchChannel(name.to_string()))
    }

    /// Resolves a composed shared region by name.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchRegion`] for unknown names.
    pub fn compose_region(&self, name: &str) -> Result<RegionInfo, KernelError> {
        self.compose
            .region(name)
            .cloned()
            .ok_or_else(|| KernelError::NoSuchRegion(name.to_string()))
    }

    /// Spawns the tasks backing one protection domain and records it in
    /// the registry. Returns the domain's principal pid.
    ///
    /// # Errors
    ///
    /// Propagates frame exhaustion and hypercall denials.
    pub fn compose_spawn_domain(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        name: &str,
        role: DomainRole,
        priority: u64,
        tasks: u64,
    ) -> Result<Pid, KernelError> {
        let mut pids = Vec::new();
        for _ in 0..tasks.max(1) {
            pids.push(self.spawn_task(m, hyp)?);
        }
        self.compose.stats.domain_tasks += pids.len() as u64;
        match role {
            DomainRole::Server => self.compose.stats.server_domains += 1,
            DomainRole::Client => self.compose.stats.client_domains += 1,
        }
        let principal = pids[0];
        self.compose.domains.push((
            name.to_string(),
            DomainInfo {
                pids,
                role,
                priority,
            },
        ));
        Ok(principal)
    }

    /// Creates a channel between two domains: claims the next slot in
    /// the shared channel table page and populates its header — the one
    /// legitimate write of each watched word.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchDomain`] for dangling endpoints and
    /// [`KernelError::ComposeLimit`] past [`MAX_CHANNELS`].
    pub fn compose_create_channel(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        name: &str,
        from: &str,
        to: &str,
        capacity: u64,
    ) -> Result<(), KernelError> {
        let from_pid = self.compose_domain(from)?.pid();
        let to_pid = self.compose_domain(to)?.pid();
        let table = match self.compose.channel_table {
            Some(table) => table,
            None => {
                let table = self.frames.alloc()?;
                self.prep_frame(m, hyp, table)?;
                self.compose.channel_table = Some(table);
                table
            }
        };
        let slot = self.compose.channels.len();
        if slot >= MAX_CHANNELS {
            return Err(KernelError::ComposeLimit(format!(
                "at most {MAX_CHANNELS} channels per system"
            )));
        }
        let info = ChannelInfo {
            table,
            slot,
            from: from_pid,
            to: to_pid,
        };
        let header = info.header_pa();
        self.kwrite(m, hyp, layout::kva(header), from_pid.0)?;
        self.kwrite(m, hyp, layout::kva(header.add(8)), to_pid.0)?;
        self.kwrite(m, hyp, layout::kva(header.add(16)), capacity.max(1))?;
        self.compose.channels.push((name.to_string(), info));
        self.compose.stats.channels_created += 1;
        Ok(())
    }

    /// Allocates a shared memory region and maps it at one virtual
    /// address into the owner and every sharer. The owner stamps the
    /// first word of each page before the watch set arms — the baseline
    /// a write-once monitor learns. Returns the mapping base.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchDomain`] for a dangling owner or
    /// sharer; propagates frame exhaustion and mapping denials.
    #[allow(clippy::too_many_arguments)] // mirrors the declaration 1:1
    pub fn compose_map_region(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        name: &str,
        owner: &str,
        sharers: &[String],
        pages: u64,
        protect: bool,
        va: Option<u64>,
    ) -> Result<VirtAddr, KernelError> {
        let owner_pid = self.compose_domain(owner)?.pid();
        let mut mapped = vec![owner_pid];
        for sharer in sharers {
            mapped.push(self.compose_domain(sharer)?.pid());
        }
        let pages = pages.max(1);
        let base = match va {
            Some(v) => VirtAddr::new(v),
            None => {
                let v = self.compose.next_region_va;
                self.compose.next_region_va += pages * PAGE_SIZE;
                VirtAddr::new(v)
            }
        };
        let mut frames = Vec::new();
        for i in 0..pages {
            let frame = self.frames.alloc()?;
            self.prep_frame(m, hyp, frame)?;
            self.kwrite(m, hyp, layout::kva(frame), compose_stamp(name, i))?;
            frames.push(frame);
        }
        for pid in &mapped {
            let mut task = self
                .tasks
                .remove(pid)
                .ok_or(KernelError::NoSuchTask(*pid))?;
            for (i, frame) in frames.iter().enumerate() {
                let page_va = base.add(i as u64 * PAGE_SIZE);
                self.map_user_page(m, hyp, &mut task, page_va, *frame, *pid == owner_pid)?;
                self.compose.stats.shared_mappings += 1;
            }
            self.tasks.insert(*pid, task);
        }
        self.compose.stats.regions_mapped += 1;
        if protect {
            self.compose.stats.protected_regions += 1;
        }
        self.compose.regions.push((
            name.to_string(),
            RegionInfo {
                frames,
                va: base,
                protect,
                owner: owner_pid,
                sharers: mapped[1..].to_vec(),
            },
        ));
        Ok(base)
    }

    /// Sends one legitimate message over a channel: bumps the slot's
    /// sequence word and stores the payload. Both words live in the
    /// table page's data area, outside every derived watch span, so
    /// benign traffic never raises monitor events.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchChannel`] for unknown names.
    pub fn compose_channel_send(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        name: &str,
        payload: u64,
    ) -> Result<(), KernelError> {
        let info = self.compose_channel(name)?;
        m.charge(tuning::PIPE_COMPUTE);
        let data = info.data_pa();
        let seq = self.kread(m, hyp, layout::kva(data))?;
        self.kwrite(m, hyp, layout::kva(data), seq + 1)?;
        self.kwrite(m, hyp, layout::kva(data.add(8)), payload)?;
        self.compose.stats.channel_messages += 1;
        Ok(())
    }

    /// Derives the composed system's watch set — every channel header
    /// and every page of every protected region — and registers it with
    /// the security layer in one deterministic batch: spans are sorted
    /// by physical address and physically adjacent spans coalesce into
    /// a single registration (never across a page boundary: monitored
    /// regions must not straddle pages). No hand-maintained watch list
    /// exists anywhere; this derivation is the only source. Returns the
    /// number of registration hypercalls issued (always 0 when the
    /// security hooks are off — baseline modes run the same composition
    /// unwatched).
    ///
    /// # Errors
    ///
    /// Propagates hypercall denials.
    pub fn compose_arm_watch(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
    ) -> Result<u64, KernelError> {
        let mut spans: Vec<(PhysAddr, u64)> = Vec::new();
        for (_, channel) in &self.compose.channels {
            spans.push((channel.header_pa(), CHANNEL_HEADER_BYTES));
        }
        for (_, region) in &self.compose.regions {
            if region.protect {
                for frame in &region.frames {
                    spans.push((*frame, PAGE_SIZE));
                }
            }
        }
        self.compose.stats.watch_spans_derived = spans.len() as u64;
        if self.config.monitor_hooks.is_none() || spans.is_empty() {
            return Ok(0);
        }
        spans.sort();
        let mut merged: Vec<(PhysAddr, u64)> = Vec::new();
        for (pa, len) in spans {
            if let Some(last) = merged.last_mut() {
                let contiguous = last.0.raw() + last.1 == pa.raw();
                let same_page = last.0.page_base() == pa.add(len - 1).page_base();
                if contiguous && same_page {
                    last.1 += len;
                    self.compose.stats.watch_spans_merged += 1;
                    continue;
                }
            }
            merged.push((pa, len));
        }
        for (pa, len) in &merged {
            let (nr, args) = Hypercall::MonitorRegister {
                sid: crate::abi::sid::COMPOSE_MONITOR,
                base: layout::kva(*pa),
                len: *len,
            }
            .encode();
            self.stats.monitor_registrations += 1;
            self.compose.stats.watch_calls_issued += 1;
            m.hvc(nr, args, hyp)?;
        }
        Ok(merged.len() as u64)
    }

    // ------------------------------------------------------------------
    // Low-level kernel memory access
    // ------------------------------------------------------------------

    /// Kernel data write with the paper's granularity-gap fallback: if the
    /// write lands in a region the protection scheme had to over-protect
    /// (e.g. a 2 MiB section containing page tables), the permission fault
    /// is resolved by asking Hypersec to emulate the write.
    fn kwrite(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        va: VirtAddr,
        value: u64,
    ) -> Result<(), KernelError> {
        match m.write_u64(va, value, hyp) {
            Ok(()) => Ok(()),
            Err(Exception::DataAbort {
                permission: true, ..
            }) if self.locked => {
                m.charge_fault();
                self.stats.emulated_writes += 1;
                let (nr, args) = Hypercall::EmulateWrite { va, value }.encode();
                m.hvc(nr, args, hyp)?;
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    fn kread(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        va: VirtAddr,
    ) -> Result<u64, KernelError> {
        Ok(m.read_u64(va, hyp)?)
    }

    /// Block variant of [`Kernel::kwrite`]: writes `words` consecutive
    /// words starting at `va`, word `j` taking `value_of(j)`. Model-
    /// equivalent to one `kwrite` per word — including the granularity-
    /// gap emulation fallback, applied per faulting word.
    fn kwrite_block(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        va: VirtAddr,
        words: u64,
        mut value_of: impl FnMut(u64) -> u64,
    ) -> Result<(), KernelError> {
        let mut done = 0u64;
        while done < words {
            match m.write_block(va.add(done * 8), words - done, hyp, |j| value_of(done + j)) {
                Ok(()) => return Ok(()),
                Err(BlockFault {
                    completed,
                    exception,
                }) => {
                    done += completed;
                    // The faulting word's machine attempt already
                    // happened inside write_block; resolve it the way
                    // kwrite would, without replaying the access.
                    match exception {
                        Exception::DataAbort {
                            permission: true, ..
                        } if self.locked => {
                            m.charge_fault();
                            self.stats.emulated_writes += 1;
                            let (nr, args) = Hypercall::EmulateWrite {
                                va: va.add(done * 8),
                                value: value_of(done),
                            }
                            .encode();
                            m.hvc(nr, args, hyp)?;
                            done += 1;
                        }
                        e => return Err(e.into()),
                    }
                }
            }
        }
        Ok(())
    }

    /// Block variant of [`Kernel::kread`]: reads `words` consecutive
    /// words starting at `va`, returning the last one.
    fn kread_block(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        va: VirtAddr,
        words: u64,
    ) -> Result<u64, KernelError> {
        m.read_block(va, words, hyp).map_err(|f| f.exception.into())
    }

    /// Streams `words` sequential writes through the page-cache copy
    /// pattern: stream word `i` goes to `base + (i % 512) * 8` (the VA
    /// wraps modulo one page) with value `first_value + i`. Splits the
    /// stream into contiguous page runs for [`Kernel::kwrite_block`];
    /// model-equivalent to one `kwrite` per word.
    fn kcopy_to_page(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        base: PhysAddr,
        words: u64,
        first_value: u64,
    ) -> Result<(), KernelError> {
        const WORDS_PER_PAGE: u64 = PAGE_SIZE / 8;
        let mut i = 0u64;
        while i < words {
            let off = i % WORDS_PER_PAGE;
            let run = (WORDS_PER_PAGE - off).min(words - i);
            let start = i;
            self.kwrite_block(m, hyp, layout::kva(base.add(off * 8)), run, |j| {
                first_value + start + j
            })?;
            i += run;
        }
        Ok(())
    }

    /// Read counterpart of [`Kernel::kcopy_to_page`].
    fn kread_from_page(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        base: PhysAddr,
        words: u64,
    ) -> Result<(), KernelError> {
        const WORDS_PER_PAGE: u64 = PAGE_SIZE / 8;
        let mut i = 0u64;
        while i < words {
            let off = i % WORDS_PER_PAGE;
            let run = (WORDS_PER_PAGE - off).min(words - i);
            self.kread_block(m, hyp, layout::kva(base.add(off * 8)), run)?;
            i += run;
        }
        Ok(())
    }

    /// Prepares a freshly allocated frame: zeroes it and performs one
    /// translated store so lazily populated stage-2 tables (KVM) take
    /// their first-touch fault here, as real guests do.
    fn prep_frame(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        frame: PhysAddr,
    ) -> Result<(), KernelError> {
        m.charge(tuning::CLEAR_PAGE_COMPUTE);
        m.tag_page(frame, PageTag::KernelData);
        m.debug_zero_page(frame);
        self.kwrite(m, hyp, layout::kva(frame), 0)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // cred / dentry object helpers
    // ------------------------------------------------------------------

    /// Clears an object slot (kzalloc). Modeled as a short store burst;
    /// the clearing itself precedes monitoring, so it is not bus-visible.
    fn zero_object(&mut self, m: &mut Machine, kind: ObjectKind, base: PhysAddr) {
        m.charge(m.cost().cache_hit * kind.words());
        for w in 0..kind.words() {
            m.debug_write_phys(base.add(w * 8), 0);
        }
    }

    fn cred_va(cred: PhysAddr, field: CredField) -> VirtAddr {
        layout::kva(cred.add(field.byte_offset()))
    }

    fn dentry_va(dentry: PhysAddr, field: DentryField) -> VirtAddr {
        layout::kva(dentry.add(field.byte_offset()))
    }

    fn cred_write(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        cred: PhysAddr,
        field: CredField,
        value: u64,
    ) -> Result<(), KernelError> {
        self.kwrite(m, hyp, Self::cred_va(cred, field), value)
    }

    fn dentry_write(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        dentry: PhysAddr,
        field: DentryField,
        value: u64,
    ) -> Result<(), KernelError> {
        self.kwrite(m, hyp, Self::dentry_va(dentry, field), value)
    }

    fn dentry_read(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        dentry: PhysAddr,
        field: DentryField,
    ) -> Result<u64, KernelError> {
        self.kread(m, hyp, Self::dentry_va(dentry, field))
    }

    /// Issues the monitor-registration hypercalls for one object,
    /// according to the configured policy.
    fn hook_register_object(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        kind: ObjectKind,
        base: PhysAddr,
        register: bool,
    ) -> Result<(), KernelError> {
        let Some(hooks) = self.config.monitor_hooks else {
            return Ok(());
        };
        let sid = match kind {
            ObjectKind::Cred => crate::abi::sid::CRED_MONITOR,
            ObjectKind::Dentry => crate::abi::sid::DENTRY_MONITOR,
        };
        let ranges = match hooks.mode {
            MonitorMode::SensitiveFields => kind.sensitive_ranges(),
            MonitorMode::WholeObject => vec![(0, kind.words())],
        };
        for (off_words, len_words) in ranges {
            let va = layout::kva(base.add(off_words * 8));
            let len = len_words * 8;
            let call = if register {
                Hypercall::MonitorRegister { sid, base: va, len }
            } else {
                Hypercall::MonitorUnregister { sid, base: va, len }
            };
            self.stats.monitor_registrations += 1;
            let (nr, args) = call.encode();
            m.hvc(nr, args, hyp)?;
        }
        Ok(())
    }

    /// Allocates and initializes a new `cred` for uid/gid 1000, wiring
    /// the security hook: register first (the fields become watched),
    /// then populate — field population is the legitimate-write window
    /// the security application learns as the baseline.
    fn cred_alloc(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        uid: u64,
    ) -> Result<PhysAddr, KernelError> {
        let cred = self.creds.alloc(&mut self.frames)?;
        m.tag_page(cred.page_base(), PageTag::KernelData);
        // kzalloc semantics: the slot is cleared before use (recycled
        // slots hold the previous occupant). Then the hook fires, before
        // any field is written — both monitoring policies observe the
        // full construction.
        self.zero_object(m, ObjectKind::Cred, cred);
        self.hook_register_object(m, hyp, ObjectKind::Cred, cred, true)?;
        self.cred_write(m, hyp, cred, CredField::Usage, 1)?;
        for field in [
            CredField::Uid,
            CredField::Suid,
            CredField::Euid,
            CredField::Fsuid,
        ] {
            self.cred_write(m, hyp, cred, field, uid)?;
        }
        for field in [
            CredField::Gid,
            CredField::Sgid,
            CredField::Egid,
            CredField::Fsgid,
        ] {
            self.cred_write(m, hyp, cred, field, uid)?;
        }
        self.cred_write(m, hyp, cred, CredField::Securebits, 0)?;
        for field in [
            CredField::CapInheritable,
            CredField::CapPermitted,
            CredField::CapEffective,
            CredField::CapBset,
        ] {
            self.cred_write(m, hyp, cred, field, 0)?;
        }
        Ok(cred)
    }

    fn cred_get(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        cred: PhysAddr,
    ) -> Result<(), KernelError> {
        let usage = self.kread(m, hyp, Self::cred_va(cred, CredField::Usage))?;
        self.cred_write(m, hyp, cred, CredField::Usage, usage + 1)
    }

    /// Drops a cred reference; frees the slab slot at zero.
    fn cred_put(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        cred: PhysAddr,
    ) -> Result<(), KernelError> {
        let usage = self.kread(m, hyp, Self::cred_va(cred, CredField::Usage))?;
        self.cred_write(m, hyp, cred, CredField::Usage, usage - 1)?;
        if usage - 1 == 0 {
            self.hook_register_object(m, hyp, ObjectKind::Cred, cred, false)?;
            self.creds.free(cred);
        }
        Ok(())
    }

    /// `d_alloc` + `d_instantiate`: creates (and caches) the dentry for
    /// `path`. The hook registers at allocation; the inode fields are then
    /// instantiated — legitimate sensitive writes the security solution
    /// observes and verifies (paper §7.2).
    fn create_dentry_at(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        path: &str,
    ) -> Result<PhysAddr, KernelError> {
        if let Some(&d) = self.dcache.get(path) {
            return Ok(d);
        }
        let dentry = self.dentries.alloc(&mut self.frames)?;
        m.tag_page(dentry.page_base(), PageTag::KernelData);
        self.zero_object(m, ObjectKind::Dentry, dentry);
        self.hook_register_object(m, hyp, ObjectKind::Dentry, dentry, true)?;
        let parent = parent_path(path)
            .and_then(|p| self.dcache.get(p).copied())
            .unwrap_or(dentry);
        // d_alloc: basic identity before instantiation.
        self.dentry_write(m, hyp, dentry, DentryField::Count, 1)?;
        self.dentry_write(m, hyp, dentry, DentryField::Seq, 0)?;
        self.dentry_write(m, hyp, dentry, DentryField::NameLen, path.len() as u64)?;
        self.dentry_write(m, hyp, dentry, DentryField::Sb, 0x5B)?;
        for f in [
            DentryField::HashNext,
            DentryField::Time,
            DentryField::Fsdata,
            DentryField::LruPrev,
            DentryField::LruNext,
            DentryField::ChildPrev,
            DentryField::ChildNext,
            DentryField::SubdirsHead,
            DentryField::SubdirsTail,
            DentryField::AliasPrev,
            DentryField::AliasNext,
            DentryField::Iname0,
            DentryField::Iname1,
            DentryField::Iname2,
            DentryField::Iname3,
        ] {
            self.dentry_write(m, hyp, dentry, f, 0)?;
        }
        // d_instantiate: sensitive identity fields.
        self.dentry_write(m, hyp, dentry, DentryField::Flags, 1)?;
        self.dentry_write(m, hyp, dentry, DentryField::NameHash, hash_path(path))?;
        self.dentry_write(m, hyp, dentry, DentryField::Parent, parent.raw())?;
        self.dentry_write(m, hyp, dentry, DentryField::Inode, 0x1000 + dentry.raw())?;
        self.dentry_write(m, hyp, dentry, DentryField::Op, 0xD0)?;
        self.dcache.insert(path.to_string(), dentry);
        Ok(dentry)
    }

    /// Whether a path-walk reference to `dentry` takes the ref-walk
    /// (write) path. Fresh dentries are ref-walked; once hot, lookups go
    /// through RCU-walk, which writes nothing — this skew is what drives
    /// the per-benchmark Table 2 churn (cold dcache workloads like untar
    /// write constantly, hot ones like apache rarely).
    fn ref_walk(&mut self, dentry: PhysAddr) -> bool {
        let heat = self.dentry_heat.entry(dentry.raw()).or_insert(0);
        *heat += 1;
        *heat <= tuning::REF_WALK_WARMUP || (*heat).is_multiple_of(tuning::REF_WALK_PERIOD)
    }

    /// `dget`: reference a dentry during a path walk (lockref bump plus
    /// periodic LRU rotation — the bookkeeping churn Table 2 measures).
    fn dget(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        dentry: PhysAddr,
    ) -> Result<(), KernelError> {
        if !self.ref_walk(dentry) {
            m.charge(8); // RCU-walk: seqcount checks only
            return Ok(());
        }
        let count = self.dentry_read(m, hyp, dentry, DentryField::Count)?;
        self.dentry_write(m, hyp, dentry, DentryField::Count, count + 1)?;
        self.lru_tick += 1;
        if self.lru_tick.is_multiple_of(tuning::LRU_ROTATE_PERIOD) {
            self.dentry_write(m, hyp, dentry, DentryField::LruPrev, self.lru_tick)?;
            self.dentry_write(m, hyp, dentry, DentryField::LruNext, self.lru_tick + 1)?;
        }
        Ok(())
    }

    fn dput(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        dentry: PhysAddr,
    ) -> Result<(), KernelError> {
        // Mirror of dget: only ref-walked references drop a count.
        let heat = self.dentry_heat.get(&dentry.raw()).copied().unwrap_or(0);
        if !(heat <= tuning::REF_WALK_WARMUP || heat % tuning::REF_WALK_PERIOD == 0) {
            m.charge(8);
            return Ok(());
        }
        let count = self.dentry_read(m, hyp, dentry, DentryField::Count)?;
        self.dentry_write(m, hyp, dentry, DentryField::Count, count.saturating_sub(1))
    }

    /// Resolves `path`, touching every component like ref-walk does.
    fn lookup(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        path: &str,
    ) -> Result<PhysAddr, KernelError> {
        let mut resolved = String::new();
        let mut last = *self
            .dcache
            .get("/")
            .ok_or_else(|| KernelError::NoSuchPath("/".into()))?;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            m.charge(tuning::PATH_COMPONENT_COMPUTE);
            resolved.push('/');
            resolved.push_str(comp);
            let dentry = *self
                .dcache
                .get(resolved.as_str())
                .ok_or_else(|| KernelError::NoSuchPath(path.to_string()))?;
            // Hash-chain probe + lockref bump.
            self.dentry_read(m, hyp, dentry, DentryField::NameHash)?;
            self.dget(m, hyp, dentry)?;
            self.dput(m, hyp, last)?;
            last = dentry;
        }
        Ok(last)
    }

    // ------------------------------------------------------------------
    // Task management
    // ------------------------------------------------------------------

    fn spawn_task(&mut self, m: &mut Machine, hyp: &mut dyn Hyp) -> Result<Pid, KernelError> {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let asid = self.next_asid;
        self.next_asid = self.next_asid.wrapping_add(1).max(1);

        let user_root = self.pt.alloc_table(m, hyp, &mut self.frames, true)?;
        let mut task = Task {
            pid,
            asid,
            user_root,
            cred: PhysAddr::new(0),
            user_pages: Vec::new(),
            table_pages: Vec::new(),
            sigactions: PhysAddr::new(0),
            kernel_stack: Vec::new(),
            fds: HashMap::new(),
            next_fd: 3, // 0..2 are the standard streams
            vmas: Vec::new(),
            demand_pages: Vec::new(),
        };

        // Image pages come from the page cache (binary file pages,
        // shared and warm); the stack is fresh anonymous memory.
        task.vmas.push(Vma {
            base: VirtAddr::new(layout::USER_IMAGE_BASE),
            len: tuning::USER_IMAGE_PAGES as u64 * PAGE_SIZE,
        });
        for i in 0..tuning::USER_IMAGE_PAGES {
            let frame = self.page_cache_frame();
            let va = VirtAddr::new(layout::USER_IMAGE_BASE + i as u64 * PAGE_SIZE);
            self.map_user_page(m, hyp, &mut task, va, frame, false)?;
        }
        let stack = self.frames.alloc()?;
        self.prep_frame(m, hyp, stack)?;
        self.map_user_page(
            m,
            hyp,
            &mut task,
            VirtAddr::new(layout::USER_STACK_TOP),
            stack,
            true,
        )?;

        // Kernel stack + signal table (fresh anonymous frames).
        for _ in 0..2 {
            let f = self.frames.alloc()?;
            self.prep_frame(m, hyp, f)?;
            task.kernel_stack.push(f);
        }
        let sig = self.frames.alloc()?;
        self.prep_frame(m, hyp, sig)?;
        task.sigactions = sig;

        task.cred = self.cred_alloc(m, hyp, 1000)?;
        self.tasks.insert(pid, task);
        Ok(pid)
    }

    fn map_user_page(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        task: &mut Task,
        va: VirtAddr,
        frame: PhysAddr,
        owned: bool,
    ) -> Result<(), KernelError> {
        let new_tables = self.pt.map_page(
            m,
            hyp,
            &mut self.frames,
            task.user_root,
            va,
            frame,
            PagePerms::USER_DATA,
        )?;
        for table in &new_tables {
            m.tag_page(*table, PageTag::PageTable);
        }
        m.tag_page(frame, PageTag::UserData);
        task.table_pages.extend(new_tables);
        task.user_pages.push((va.page_base(), frame, owned));
        Ok(())
    }

    /// Context switch to `to` (scheduler + `TTBR0` install, which traps to
    /// Hypersec when TVM is armed).
    ///
    /// # Errors
    ///
    /// Fails if `to` does not exist or Hypersec rejects the root.
    pub fn switch_to(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        to: Pid,
    ) -> Result<(), KernelError> {
        let task = self.tasks.get(&to).ok_or(KernelError::NoSuchTask(to))?;
        let ttbr0 = task.user_root.raw() | (task.asid as u64) << 48;
        m.charge(tuning::SCHED_COMPUTE);
        m.write_sysreg(SysReg::TTBR0_EL1, ttbr0, hyp)?;
        self.current = to;
        self.stats.context_switches += 1;
        Ok(())
    }

    /// Polls the interrupt controller and services pending lines; MBM
    /// interrupts are forwarded to Hypersec via hypercall when the kernel
    /// is instrumented (paper §6.2).
    ///
    /// Returns the number of interrupts handled.
    ///
    /// # Errors
    ///
    /// Propagates hypercall denials.
    pub fn poll_irqs(&mut self, m: &mut Machine, hyp: &mut dyn Hyp) -> Result<u64, KernelError> {
        let mut handled = 0;
        loop {
            // Step devices on every iteration, not just once up front:
            // servicing an interrupt can drain the MBM ring while the
            // snoop FIFO still holds captures, and those only become new
            // interrupts after another pipeline step. A single pre-loop
            // step would return with IRQs still pending.
            m.step_devices();
            let Some(line) = m.irq_mut().ack_next() else {
                break;
            };
            let mbm = line == IrqLine::MBM;
            if mbm {
                m.emit_begin(SpanKind::MbmIrqService, u64::from(line.0));
            }
            m.charge_irq();
            handled += 1;
            let outcome = if mbm && self.config.forward_irq {
                self.stats.irqs_forwarded += 1;
                let (nr, args) = Hypercall::IrqNotify.encode();
                m.hvc(nr, args, hyp).map(|_| ())
            } else {
                Ok(())
            };
            if mbm {
                m.emit_end(SpanKind::MbmIrqService, u64::from(outcome.is_err()));
            }
            outcome?;
        }
        Ok(handled)
    }

    // ------------------------------------------------------------------
    // Syscalls
    // ------------------------------------------------------------------

    fn syscall_prologue(&mut self, m: &mut Machine) {
        self.stats.syscalls += 1;
        m.charge_syscall();
        m.charge(tuning::SYSCALL_COMPUTE);
        m.emit_begin(SpanKind::Syscall, self.stats.syscalls);
    }

    /// Closes the span opened by [`Kernel::syscall_prologue`]. Syscalls
    /// that abort with an error leave their span open; the telemetry
    /// registry surfaces those as open spans rather than latencies.
    fn syscall_epilogue(m: &Machine) {
        m.emit_end(SpanKind::Syscall, 0);
    }

    /// `getpid` — the null syscall.
    pub fn sys_getpid(&mut self, m: &mut Machine) -> Pid {
        self.syscall_prologue(m);
        Self::syscall_epilogue(m);
        self.current
    }

    /// `stat(path)` — resolve and fill a stat buffer on the user stack.
    ///
    /// # Errors
    ///
    /// Fails when the path does not exist.
    pub fn sys_stat(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        path: &str,
    ) -> Result<(), KernelError> {
        self.syscall_prologue(m);
        m.charge(tuning::STAT_COMPUTE);
        let dentry = self.lookup(m, hyp, path)?;
        let inode = self.dentry_read(m, hyp, dentry, DentryField::Inode)?;
        // Fill the user's stat buffer (8 words on the stack page).
        let sp = VirtAddr::new(layout::USER_STACK_TOP);
        m.write_block(sp, 8, hyp, |i| inode + i)
            .map_err(|f| f.exception)?;
        self.dput(m, hyp, dentry)?;
        Self::syscall_epilogue(m);
        Ok(())
    }

    /// `sigaction` — install a handler for `sig`.
    ///
    /// # Errors
    ///
    /// Fails only on machine exceptions.
    pub fn sys_signal_install(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        sig: u64,
    ) -> Result<(), KernelError> {
        self.syscall_prologue(m);
        m.charge(tuning::SIGNAL_INSTALL_COMPUTE);
        let task = self.tasks.get(&self.current).expect("current task exists");
        let base = task.sigactions;
        let slot = layout::kva(base.add((sig % 64) * 16));
        self.kwrite(m, hyp, slot, SIGNAL_HANDLER_ADDR)?;
        self.kwrite(m, hyp, slot.add(8), sig)?;
        Self::syscall_epilogue(m);
        Ok(())
    }

    /// Deliver a signal to the current task and return from the handler
    /// (the `lat_sig catch` path).
    ///
    /// # Errors
    ///
    /// Fails only on machine exceptions.
    pub fn sys_signal_deliver(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        sig: u64,
    ) -> Result<(), KernelError> {
        self.syscall_prologue(m);
        m.charge(tuning::SIGNAL_DELIVER_COMPUTE);
        let task = self.tasks.get(&self.current).expect("current task exists");
        let base = task.sigactions;
        // Read the handler, push a signal frame onto the user stack,
        // "run" the handler, then sigreturn (second kernel entry).
        self.kread(m, hyp, layout::kva(base.add((sig % 64) * 16)))?;
        let sp = VirtAddr::new(layout::USER_STACK_TOP);
        m.write_block(sp, 16, hyp, |i| i).map_err(|f| f.exception)?;
        m.charge_syscall(); // sigreturn
        m.read_block(sp, 16, hyp).map_err(|f| f.exception)?;
        Self::syscall_epilogue(m);
        Ok(())
    }

    /// `fork` — clone the current task.
    ///
    /// # Errors
    ///
    /// Fails on memory exhaustion or Hypersec denial.
    pub fn sys_fork(&mut self, m: &mut Machine, hyp: &mut dyn Hyp) -> Result<Pid, KernelError> {
        self.syscall_prologue(m);
        m.charge(tuning::FORK_COMPUTE);
        self.stats.forks += 1;

        let parent = self.current;
        let (parent_pages, parent_cred) = {
            let t = self
                .tasks
                .get(&parent)
                .ok_or(KernelError::NoSuchTask(parent))?;
            (t.user_pages.clone(), t.cred)
        };

        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let asid = self.next_asid;
        self.next_asid = self.next_asid.wrapping_add(1).max(1);
        let user_root = self.pt.alloc_table(m, hyp, &mut self.frames, true)?;
        let mut task = Task {
            pid,
            asid,
            user_root,
            cred: parent_cred,
            user_pages: Vec::new(),
            table_pages: Vec::new(),
            sigactions: PhysAddr::new(0),
            kernel_stack: Vec::new(),
            fds: HashMap::new(),
            next_fd: 3, // 0..2 are the standard streams
            vmas: Vec::new(),
            demand_pages: Vec::new(),
        };

        // Share the parent's frames (COW in spirit): copy the mappings —
        // except the stack, whose first write breaks COW onto a fresh
        // anonymous frame immediately.
        let stack_va = VirtAddr::new(layout::USER_STACK_TOP);
        for (va, frame, _owned) in parent_pages {
            if va == stack_va {
                let fresh = self.frames.alloc()?;
                self.prep_frame(m, hyp, fresh)?;
                self.map_user_page(m, hyp, &mut task, va, fresh, true)?;
            } else {
                self.map_user_page(m, hyp, &mut task, va, frame, false)?;
            }
        }
        task.vmas = self
            .tasks
            .get(&parent)
            .map(|t| t.vmas.clone())
            .unwrap_or_default();
        // Private kernel stack and signal table.
        for _ in 0..2 {
            let f = self.frames.alloc()?;
            self.prep_frame(m, hyp, f)?;
            task.kernel_stack.push(f);
        }
        let sig = self.frames.alloc()?;
        self.prep_frame(m, hyp, sig)?;
        task.sigactions = sig;
        // Share the cred.
        self.cred_get(m, hyp, parent_cred)?;
        self.tasks.insert(pid, task);
        Self::syscall_epilogue(m);
        Ok(pid)
    }

    /// `execve` — replace the image of `pid` (must be current) with a new
    /// one, resolving the binary path.
    ///
    /// # Errors
    ///
    /// Fails if the binary path is missing or on memory exhaustion.
    pub fn sys_execve(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        path: &str,
    ) -> Result<(), KernelError> {
        self.syscall_prologue(m);
        m.charge(tuning::EXEC_COMPUTE);
        self.stats.execs += 1;
        let binary = self.lookup(m, hyp, path)?;
        self.dput(m, hyp, binary)?;

        // exec installs fresh credentials (`prepare_exec_creds` +
        // `commit_creds` in Linux) — the legitimate sensitive-write burst
        // the paper's cred monitor observes and verifies.
        let old_cred = self
            .tasks
            .get(&self.current)
            .ok_or(KernelError::NoSuchTask(self.current))?
            .cred;
        let new_cred = self.cred_alloc(m, hyp, 1000)?;
        self.tasks
            .get_mut(&self.current)
            .expect("checked above")
            .cred = new_cred;
        self.cred_put(m, hyp, old_cred)?;

        // exec_mmap: build a brand-new address space around a fresh root
        // (table pages come hot from the quicklist), switch TTBR0 to it,
        // and retire the old tree with a single unregister call — no
        // per-descriptor teardown, as Linux frees a dead mm wholesale.
        let pid = self.current;
        let mut task = self
            .tasks
            .remove(&pid)
            .ok_or(KernelError::NoSuchTask(pid))?;
        let old_root = task.user_root;
        let old_tables = std::mem::take(&mut task.table_pages);
        let old_pages = std::mem::take(&mut task.user_pages);
        task.vmas.clear();
        task.demand_pages.clear();

        task.user_root = self.pt.alloc_table(m, hyp, &mut self.frames, true)?;
        task.vmas.push(Vma {
            base: VirtAddr::new(layout::USER_IMAGE_BASE),
            len: tuning::USER_IMAGE_PAGES as u64 * PAGE_SIZE,
        });
        // Eagerly map the touched prefix of the binary (page-cache
        // frames); the rest of the image demand-faults.
        for i in 0..tuning::EXEC_EAGER_PAGES {
            let frame = self.page_cache_frame();
            let va = VirtAddr::new(layout::USER_IMAGE_BASE + i as u64 * PAGE_SIZE);
            self.map_user_page(m, hyp, &mut task, va, frame, false)?;
        }
        let stack = self.frames.alloc()?;
        self.prep_frame(m, hyp, stack)?;
        self.map_user_page(
            m,
            hyp,
            &mut task,
            VirtAddr::new(layout::USER_STACK_TOP),
            stack,
            true,
        )?;

        // Install the new address space, then retire the old one.
        let ttbr0 = task.user_root.raw() | (task.asid as u64) << 48;
        m.write_sysreg(SysReg::TTBR0_EL1, ttbr0, hyp)?;
        m.tlbi_asid(task.asid);
        self.pt.retire_address_space(m, hyp, old_root, old_tables)?;
        for (_va, frame, owned) in old_pages {
            if owned {
                m.tag_page(frame, PageTag::Free);
                self.frames.free(frame);
            }
        }
        self.tasks.insert(pid, task);
        Self::syscall_epilogue(m);
        Ok(())
    }

    /// `exit` — tear down `pid` and reschedule to `reap_to`.
    ///
    /// # Errors
    ///
    /// Fails if `pid` or `reap_to` is unknown.
    pub fn sys_exit(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        pid: Pid,
        reap_to: Pid,
    ) -> Result<(), KernelError> {
        self.syscall_prologue(m);
        m.charge(tuning::EXIT_COMPUTE);
        self.stats.exits += 1;
        let task = self
            .tasks
            .remove(&pid)
            .ok_or(KernelError::NoSuchTask(pid))?;
        // exit_mmap: the whole tree is retired at once (one unregister
        // hypercall under Hypernel); owned anonymous frames are freed,
        // shared/page-cache frames are not.
        self.pt
            .retire_address_space(m, hyp, task.user_root, task.table_pages)?;
        for (_va, frame, owned) in task.user_pages {
            if owned {
                m.tag_page(frame, PageTag::Free);
                self.frames.free(frame);
            }
        }
        for f in task.kernel_stack {
            m.tag_page(f, PageTag::Free);
            self.frames.free(f);
        }
        m.tag_page(task.sigactions, PageTag::Free);
        self.frames.free(task.sigactions);
        m.tlbi_asid(task.asid);
        self.cred_put(m, hyp, task.cred)?;
        if self.current == pid {
            self.switch_to(m, hyp, reap_to)?;
        }
        Self::syscall_epilogue(m);
        Ok(())
    }

    /// `mmap` — create a demand-paged region of `pages` pages, eagerly
    /// populating the first [`tuning::MMAP_EAGER_PAGES`] as file-backed
    /// mmap does for the touched prefix.
    ///
    /// # Errors
    ///
    /// Fails on memory exhaustion or Hypersec denial.
    pub fn sys_mmap(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        pages: usize,
    ) -> Result<VirtAddr, KernelError> {
        self.syscall_prologue(m);
        m.charge(tuning::MMAP_COMPUTE);
        // VMA/slab growth: every few mmaps the kernel touches a fresh
        // slab page for vm_area_structs (a lazy stage-2 fault in a VM).
        self.mmap_count += 1;
        if self.mmap_count.is_multiple_of(4) {
            let slab_page = self.frames.alloc()?;
            self.prep_frame(m, hyp, slab_page)?;
            m.tag_page(slab_page, PageTag::Free);
            self.frames.free(slab_page); // stays warm; modeled growth only
        }
        let base = VirtAddr::new(self.next_mmap_va);
        self.next_mmap_va += (pages as u64 + 16) * PAGE_SIZE;
        let pid = self.current;
        let mut task = self
            .tasks
            .remove(&pid)
            .ok_or(KernelError::NoSuchTask(pid))?;
        task.vmas.push(Vma {
            base,
            len: pages as u64 * PAGE_SIZE,
        });
        let eager = tuning::MMAP_EAGER_PAGES.min(pages);
        for i in 0..eager {
            let frame = self.page_cache_frame();
            let va = base.add(i as u64 * PAGE_SIZE);
            let new_tables = self.pt.map_page(
                m,
                hyp,
                &mut self.frames,
                task.user_root,
                va,
                frame,
                PagePerms::USER_DATA,
            )?;
            task.table_pages.extend(new_tables);
            task.demand_pages.push((va, frame));
        }
        self.tasks.insert(pid, task);
        Self::syscall_epilogue(m);
        Ok(base)
    }

    /// `munmap` — tear down the region at `base`.
    ///
    /// # Errors
    ///
    /// Fails if `base` is not a mapped region of the current task.
    pub fn sys_munmap(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        base: VirtAddr,
    ) -> Result<(), KernelError> {
        self.syscall_prologue(m);
        m.charge(tuning::MMAP_COMPUTE / 2);
        let pid = self.current;
        let mut task = self
            .tasks
            .remove(&pid)
            .ok_or(KernelError::NoSuchTask(pid))?;
        let Some(pos) = task.vmas.iter().position(|v| v.base == base) else {
            self.tasks.insert(pid, task);
            return Err(KernelError::NoSuchPath(format!("vma at {base}")));
        };
        let vma = task.vmas.remove(pos);
        let mut kept = Vec::new();
        for (va, frame) in task.demand_pages.drain(..) {
            if vma.contains(va) {
                self.pt.unmap_page(m, hyp, task.user_root, va)?;
            } else {
                kept.push((va, frame));
            }
        }
        task.demand_pages = kept;
        self.tasks.insert(pid, task);
        Self::syscall_epilogue(m);
        Ok(())
    }

    fn page_cache_frame(&mut self) -> PhysAddr {
        self.page_cache_cursor += 1;
        if self
            .page_cache_cursor
            .is_multiple_of(tuning::PAGE_CACHE_GROWTH_PERIOD)
        {
            // Page-cache growth: a cold frame joins the pool (first guest
            // touch of it lazily faults stage 2 under KVM).
            if let Ok(fresh) = self.frames.alloc() {
                self.page_cache.push(fresh);
                return fresh;
            }
        }
        self.page_cache[self.page_cache_cursor % self.page_cache.len()]
    }

    /// A user-mode touch of `va`: performs the load at EL0, handling a
    /// demand fault by mapping a page-cache frame (the LMbench `lat_pagefault`
    /// path).
    ///
    /// # Errors
    ///
    /// Fails if `va` is in no VMA of the current task.
    pub fn user_touch(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        va: VirtAddr,
    ) -> Result<u64, KernelError> {
        m.set_el(ExceptionLevel::El0);
        let result = m.read_u64(va.word_base(), hyp);
        m.set_el(ExceptionLevel::El1);
        match result {
            Ok(v) => Ok(v),
            Err(Exception::DataAbort {
                permission: false, ..
            }) => {
                m.charge_fault();
                m.charge(tuning::FAULT_COMPUTE);
                self.stats.page_faults += 1;
                let pid = self.current;
                let mut task = self
                    .tasks
                    .remove(&pid)
                    .ok_or(KernelError::NoSuchTask(pid))?;
                if task.vma_for(va).is_none() {
                    self.tasks.insert(pid, task);
                    return Err(KernelError::Machine(Exception::DataAbort {
                        va,
                        kind: hypernel_machine::machine::AccessKind::Read,
                        permission: false,
                    }));
                }
                let frame = self.page_cache_frame();
                let page_va = va.page_base();
                let new_tables = self.pt.map_page(
                    m,
                    hyp,
                    &mut self.frames,
                    task.user_root,
                    page_va,
                    frame,
                    PagePerms::USER_DATA,
                )?;
                task.table_pages.extend(new_tables);
                task.demand_pages.push((page_va, frame));
                self.tasks.insert(pid, task);
                // Retry at EL0.
                m.set_el(ExceptionLevel::El0);
                let v = m.read_u64(va.word_base(), hyp);
                m.set_el(ExceptionLevel::El1);
                Ok(v?)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// A user-mode store to `va`, with the same demand-fault handling as
    /// [`Kernel::user_touch`].
    ///
    /// # Errors
    ///
    /// Fails if `va` is in no VMA of the current task.
    pub fn user_store(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        va: VirtAddr,
        value: u64,
    ) -> Result<(), KernelError> {
        m.set_el(ExceptionLevel::El0);
        let result = m.write_u64(va.word_base(), value, hyp);
        m.set_el(ExceptionLevel::El1);
        match result {
            Ok(()) => Ok(()),
            Err(Exception::DataAbort {
                permission: false, ..
            }) => {
                // Fault in the page via the shared demand path, then retry.
                self.user_touch(m, hyp, va)?;
                m.set_el(ExceptionLevel::El0);
                let r = m.write_u64(va.word_base(), value, hyp);
                m.set_el(ExceptionLevel::El1);
                Ok(r?)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// `creat(path)` — create a file (dentry + inode).
    ///
    /// # Errors
    ///
    /// Fails if the parent directory does not exist.
    pub fn sys_create(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        path: &str,
    ) -> Result<(), KernelError> {
        self.syscall_prologue(m);
        m.charge(tuning::CREATE_COMPUTE);
        if let Some(parent) = parent_path(path) {
            let pd = self.lookup(m, hyp, parent)?;
            // Parent directory bookkeeping.
            self.dentry_write(m, hyp, pd, DentryField::SubdirsHead, self.lru_tick)?;
            self.dput(m, hyp, pd)?;
        }
        self.create_dentry_at(m, hyp, path)?;
        self.stats.files_created += 1;
        Self::syscall_epilogue(m);
        Ok(())
    }

    /// `rename(from, to)` — move a file. The dentry's identity fields
    /// (name hash, parent) legitimately change here, so the kernel opens
    /// an *authorized update window*: unregister, rewrite, re-register.
    /// A write-once security application sees a fresh registration and
    /// accepts the new values — while the same writes outside a window
    /// are flagged (paper §7.2's "verifies the integrity" protocol).
    ///
    /// # Errors
    ///
    /// Fails when the source path does not exist or the target's parent
    /// is missing.
    pub fn sys_rename(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        from: &str,
        to: &str,
    ) -> Result<(), KernelError> {
        self.syscall_prologue(m);
        m.charge(tuning::CREATE_COMPUTE / 2);
        let dentry = self.lookup(m, hyp, from)?;
        let new_parent = parent_path(to)
            .map(|p| self.lookup(m, hyp, p))
            .transpose()?
            .unwrap_or(dentry);
        // Authorized update window.
        self.hook_register_object(m, hyp, ObjectKind::Dentry, dentry, false)?;
        self.dentry_write(m, hyp, dentry, DentryField::NameHash, hash_path(to))?;
        self.dentry_write(m, hyp, dentry, DentryField::NameLen, to.len() as u64)?;
        self.dentry_write(m, hyp, dentry, DentryField::Parent, new_parent.raw())?;
        self.hook_register_object(m, hyp, ObjectKind::Dentry, dentry, true)?;
        self.dcache.remove(from);
        self.dcache.insert(to.to_string(), dentry);
        self.dput(m, hyp, dentry)?;
        if new_parent != dentry {
            self.dput(m, hyp, new_parent)?;
        }
        Self::syscall_epilogue(m);
        Ok(())
    }

    /// `unlink(path)` — remove a file: the dentry turns negative (a
    /// legitimate sensitive-field update) and is freed.
    ///
    /// # Errors
    ///
    /// Fails when the path does not exist.
    pub fn sys_unlink(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        path: &str,
    ) -> Result<(), KernelError> {
        self.syscall_prologue(m);
        let dentry = self.lookup(m, hyp, path)?;
        // Unregister before d_delete: the negative-turn writes happen in
        // the authorized-update window, not under monitoring.
        self.hook_register_object(m, hyp, ObjectKind::Dentry, dentry, false)?;
        self.dentry_write(m, hyp, dentry, DentryField::Flags, 0)?;
        self.dentry_write(m, hyp, dentry, DentryField::Inode, 0)?;
        self.dcache.remove(path);
        if let Some(data) = self.file_data.remove(&dentry) {
            m.tag_page(data, PageTag::Free);
            self.frames.free(data);
        }
        self.dentries.free(dentry);
        Self::syscall_epilogue(m);
        Ok(())
    }

    /// `write(path, bytes)` — append-style write through the page cache.
    ///
    /// # Errors
    ///
    /// Fails when the path does not exist.
    pub fn sys_write_file(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        path: &str,
        bytes: u64,
    ) -> Result<(), KernelError> {
        self.syscall_prologue(m);
        let dentry = self.lookup(m, hyp, path)?;
        let data = match self.file_data.get(&dentry) {
            Some(&d) => d,
            None => {
                let d = self.frames.alloc()?;
                self.prep_frame(m, hyp, d)?;
                self.file_data.insert(dentry, d);
                d
            }
        };
        m.charge((bytes / PAGE_SIZE + 1) * tuning::FILE_COPY_COMPUTE_PER_PAGE);
        self.kcopy_to_page(m, hyp, data, (bytes / 8).max(1), 0)?;
        // File writes update the *inode* mtime, not the dentry — dentry
        // fields stay untouched on the data path.
        self.dput(m, hyp, dentry)?;
        Self::syscall_epilogue(m);
        Ok(())
    }

    /// `read(path, bytes)` — read through the page cache.
    ///
    /// # Errors
    ///
    /// Fails when the path does not exist.
    pub fn sys_read_file(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        path: &str,
        bytes: u64,
    ) -> Result<(), KernelError> {
        self.syscall_prologue(m);
        let dentry = self.lookup(m, hyp, path)?;
        if let Some(&data) = self.file_data.get(&dentry) {
            m.charge((bytes / PAGE_SIZE + 1) * tuning::FILE_COPY_COMPUTE_PER_PAGE);
            self.kread_from_page(m, hyp, data, (bytes / 8).max(1))?;
        }
        self.dput(m, hyp, dentry)?;
        Self::syscall_epilogue(m);
        Ok(())
    }

    /// `open(path)` — resolve the path and install a descriptor holding
    /// a reference on the dentry.
    ///
    /// # Errors
    ///
    /// Fails when the path does not exist.
    pub fn sys_open(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        path: &str,
    ) -> Result<Fd, KernelError> {
        self.syscall_prologue(m);
        let dentry = self.lookup(m, hyp, path)?;
        let pid = self.current;
        let task = self
            .tasks
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchTask(pid))?;
        let fd = Fd(task.next_fd);
        task.next_fd += 1;
        task.fds.insert(fd, dentry);
        Self::syscall_epilogue(m);
        Ok(fd)
    }

    /// `close(fd)` — drop the descriptor's dentry reference.
    ///
    /// # Errors
    ///
    /// Fails when `fd` is not open in the current task.
    pub fn sys_close(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        fd: Fd,
    ) -> Result<(), KernelError> {
        self.syscall_prologue(m);
        let pid = self.current;
        let task = self
            .tasks
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchTask(pid))?;
        let dentry = task
            .fds
            .remove(&fd)
            .ok_or_else(|| KernelError::NoSuchPath(format!("{fd}")))?;
        self.dput(m, hyp, dentry)?;
        Self::syscall_epilogue(m);
        Ok(())
    }

    fn fd_dentry(&self, fd: Fd) -> Result<PhysAddr, KernelError> {
        let task = self
            .tasks
            .get(&self.current)
            .ok_or(KernelError::NoSuchTask(self.current))?;
        task.fds
            .get(&fd)
            .copied()
            .ok_or_else(|| KernelError::NoSuchPath(format!("{fd}")))
    }

    /// `write(fd, bytes)` — like [`Kernel::sys_write_file`] but through an
    /// open descriptor: no path walk, no per-call dcache churn — the
    /// realistic hot path for repeated IO.
    ///
    /// # Errors
    ///
    /// Fails when `fd` is not open, or its file was unlinked (stale).
    pub fn sys_write_fd(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        fd: Fd,
        bytes: u64,
    ) -> Result<(), KernelError> {
        self.syscall_prologue(m);
        let dentry = self.fd_dentry(fd)?;
        let data = match self.file_data.get(&dentry) {
            Some(&d) => d,
            None => {
                // The file may have been unlinked under the descriptor; a
                // fresh page keeps the model simple (O_TMPFILE-ish).
                let d = self.frames.alloc()?;
                self.prep_frame(m, hyp, d)?;
                self.file_data.insert(dentry, d);
                d
            }
        };
        m.charge((bytes / PAGE_SIZE + 1) * tuning::FILE_COPY_COMPUTE_PER_PAGE);
        self.kcopy_to_page(m, hyp, data, (bytes / 8).max(1), 0)?;
        Self::syscall_epilogue(m);
        Ok(())
    }

    /// `read(fd, bytes)` — descriptor-based read.
    ///
    /// # Errors
    ///
    /// Fails when `fd` is not open in the current task.
    pub fn sys_read_fd(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        fd: Fd,
        bytes: u64,
    ) -> Result<(), KernelError> {
        self.syscall_prologue(m);
        let dentry = self.fd_dentry(fd)?;
        if let Some(&data) = self.file_data.get(&dentry) {
            m.charge((bytes / PAGE_SIZE + 1) * tuning::FILE_COPY_COMPUTE_PER_PAGE);
            self.kread_from_page(m, hyp, data, (bytes / 8).max(1))?;
        }
        Self::syscall_epilogue(m);
        Ok(())
    }

    /// One pipe round trip between the current task and `peer`: write a
    /// token, block (WFI under KVM), switch, peer reads and replies,
    /// switch back (the `lat_pipe` path).
    ///
    /// # Errors
    ///
    /// Fails if `peer` is unknown.
    pub fn sys_pipe_roundtrip(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        peer: Pid,
        bytes: u64,
    ) -> Result<(), KernelError> {
        let me = self.current;
        let words = (bytes / 8).max(1);
        let buf = self.pipe_buffer;
        // Writer side.
        self.syscall_prologue(m);
        m.charge(tuning::PIPE_COMPUTE);
        self.kcopy_to_page(m, hyp, buf, words, 0)?;
        // Wake the peer: cross-CPU IPI (a vGIC trap under KVM).
        m.send_sgi(hyp);
        Self::syscall_epilogue(m);
        self.switch_to(m, hyp, peer)?;
        // Reader side.
        self.syscall_prologue(m);
        m.charge(tuning::PIPE_COMPUTE);
        self.kread_from_page(m, hyp, buf, words)?;
        Self::syscall_epilogue(m);
        // Reply.
        self.syscall_prologue(m);
        m.charge(tuning::PIPE_COMPUTE);
        self.kcopy_to_page(m, hyp, buf, words, 1)?;
        m.send_sgi(hyp);
        Self::syscall_epilogue(m);
        self.switch_to(m, hyp, me)?;
        // Original task consumes the reply.
        self.syscall_prologue(m);
        m.charge(tuning::PIPE_COMPUTE);
        self.kread_from_page(m, hyp, buf, words)?;
        Self::syscall_epilogue(m);
        Ok(())
    }

    /// One AF_UNIX socket round trip: a pipe round trip plus protocol
    /// processing (the `lat_unix` path).
    ///
    /// # Errors
    ///
    /// Fails if `peer` is unknown.
    pub fn sys_socket_roundtrip(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        peer: Pid,
        bytes: u64,
    ) -> Result<(), KernelError> {
        m.charge(tuning::SOCKET_EXTRA_COMPUTE);
        // AF_UNIX raises extra wakeups (`sock_def_readable` on each end).
        m.send_sgi(hyp);
        m.send_sgi(hyp);
        self.sys_pipe_roundtrip(m, hyp, peer, bytes)
    }
}

/// Parent of `path`, or `None` for `/`.
fn parent_path(path: &str) -> Option<&str> {
    if path == "/" {
        return None;
    }
    match path.rfind('/') {
        Some(0) => Some("/"),
        Some(i) => Some(&path[..i]),
        None => Some("/"),
    }
}

/// Deterministic path hash (FNV-1a).
fn hash_path(path: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypernel_machine::machine::{MachineConfig, NullHyp};

    fn machine() -> Machine {
        Machine::new(MachineConfig {
            dram_size: layout::DRAM_SIZE,
            ..MachineConfig::default()
        })
    }

    fn boot() -> (Machine, NullHyp, Kernel) {
        let mut m = machine();
        let mut hyp = NullHyp;
        let k = Kernel::boot(&mut m, &mut hyp, KernelConfig::native()).expect("boot");
        (m, hyp, k)
    }

    #[test]
    fn boot_creates_init_task() {
        let (_m, _hyp, k) = boot();
        assert_eq!(k.current(), Pid(1));
        let init = k.task(Pid(1)).expect("init exists");
        assert_eq!(init.user_pages.len(), tuning::USER_IMAGE_PAGES + 1);
        // Exactly one owned (anonymous stack) frame; the image is shared
        // page-cache memory.
        assert_eq!(init.user_pages.iter().filter(|(_, _, o)| *o).count(), 1);
        assert_eq!(k.cred_slab().stats().live, 1);
    }

    #[test]
    fn stat_existing_and_missing() {
        let (mut m, mut hyp, mut k) = boot();
        k.sys_stat(&mut m, &mut hyp, "/bin/sh").expect("stat ok");
        let err = k.sys_stat(&mut m, &mut hyp, "/bin/missing").unwrap_err();
        assert!(matches!(err, KernelError::NoSuchPath(_)));
    }

    #[test]
    fn fork_shares_cred_and_frames() {
        let (mut m, mut hyp, mut k) = boot();
        let child = k.sys_fork(&mut m, &mut hyp).expect("fork");
        let parent = k.task(Pid(1)).unwrap();
        let childt = k.task(child).unwrap();
        assert_eq!(parent.cred, childt.cred);
        assert_eq!(parent.user_pages.len(), childt.user_pages.len());
        assert_ne!(parent.user_root, childt.user_root);
        // Image frames shared, stack frame private (COW broken).
        assert_eq!(parent.user_pages[0].1, childt.user_pages[0].1);
        let pstack = parent.user_pages.iter().find(|(_, _, o)| *o).unwrap();
        let cstack = childt.user_pages.iter().find(|(_, _, o)| *o).unwrap();
        assert_ne!(pstack.1, cstack.1);
        // Usage count bumped to 2.
        let usage = m.debug_read_phys(parent.cred);
        assert_eq!(usage, 2);
    }

    #[test]
    fn fork_exit_restores_task_count() {
        let (mut m, mut hyp, mut k) = boot();
        for _ in 0..5 {
            let child = k.sys_fork(&mut m, &mut hyp).expect("fork");
            k.switch_to(&mut m, &mut hyp, child).expect("switch");
            k.sys_exit(&mut m, &mut hyp, child, Pid(1)).expect("exit");
        }
        assert_eq!(k.pids(), vec![Pid(1)]);
        assert_eq!(k.current(), Pid(1));
        let usage = m.debug_read_phys(k.task(Pid(1)).unwrap().cred);
        assert_eq!(usage, 1, "cred refcount balanced");
    }

    #[test]
    fn exec_replaces_image() {
        let (mut m, mut hyp, mut k) = boot();
        let old_root = k.task(Pid(1)).unwrap().user_root;
        k.sys_execve(&mut m, &mut hyp, "/bin/sh").expect("exec");
        let task = k.task(Pid(1)).unwrap();
        // A fresh address space with only the eager prefix mapped.
        assert_ne!(task.user_root, old_root);
        assert_eq!(task.user_pages.len(), tuning::EXEC_EAGER_PAGES + 1);
        assert_eq!(k.stats().execs, 1);
        // The rest of the image demand-faults on touch.
        let tail = VirtAddr::new(
            layout::USER_IMAGE_BASE + (tuning::USER_IMAGE_PAGES as u64 - 1) * PAGE_SIZE,
        );
        k.user_touch(&mut m, &mut hyp, tail).expect("demand page");
        assert_eq!(k.stats().page_faults, 1);
    }

    #[test]
    fn mmap_touch_munmap() {
        let (mut m, mut hyp, mut k) = boot();
        let base = k.sys_mmap(&mut m, &mut hyp, 16).expect("mmap");
        // Touch an eagerly mapped page and a demand page.
        k.user_touch(&mut m, &mut hyp, base).expect("eager touch");
        let faults_before = k.stats().page_faults;
        k.user_touch(&mut m, &mut hyp, base.add(8 * PAGE_SIZE))
            .expect("demand touch");
        assert_eq!(k.stats().page_faults, faults_before + 1);
        k.sys_munmap(&mut m, &mut hyp, base).expect("munmap");
        // The whole region is gone.
        let err = k.user_touch(&mut m, &mut hyp, base).unwrap_err();
        assert!(matches!(err, KernelError::Machine(_)));
    }

    #[test]
    fn create_write_read_unlink() {
        let (mut m, mut hyp, mut k) = boot();
        k.sys_create(&mut m, &mut hyp, "/tmp/x").expect("create");
        k.sys_write_file(&mut m, &mut hyp, "/tmp/x", 4096)
            .expect("write");
        k.sys_read_file(&mut m, &mut hyp, "/tmp/x", 4096)
            .expect("read");
        let live_before = k.dentry_slab().stats().live;
        k.sys_unlink(&mut m, &mut hyp, "/tmp/x").expect("unlink");
        assert_eq!(k.dentry_slab().stats().live, live_before - 1);
        assert!(k.dentry_of("/tmp/x").is_none());
    }

    #[test]
    fn pipe_roundtrip_switches_context() {
        let (mut m, mut hyp, mut k) = boot();
        let child = k.sys_fork(&mut m, &mut hyp).expect("fork");
        let switches = k.stats().context_switches;
        k.sys_pipe_roundtrip(&mut m, &mut hyp, child, 512)
            .expect("pipe");
        assert_eq!(k.stats().context_switches, switches + 2);
        assert_eq!(k.current(), Pid(1));
    }

    #[test]
    fn signal_install_and_deliver() {
        let (mut m, mut hyp, mut k) = boot();
        k.sys_signal_install(&mut m, &mut hyp, 10).expect("install");
        k.sys_signal_deliver(&mut m, &mut hyp, 10).expect("deliver");
        assert!(k.stats().syscalls >= 2);
    }

    #[test]
    fn syscalls_charge_cycles() {
        let (mut m, mut hyp, mut k) = boot();
        let c0 = m.cycles();
        k.sys_stat(&mut m, &mut hyp, "/bin/sh").expect("stat");
        let stat_cost = m.cycles() - c0;
        assert!(
            stat_cost > 500,
            "stat must cost real cycles, got {stat_cost}"
        );
        let c1 = m.cycles();
        k.sys_fork(&mut m, &mut hyp).expect("fork");
        let fork_cost = m.cycles() - c1;
        assert!(
            fork_cost > 10 * stat_cost,
            "fork ({fork_cost}) must dwarf stat ({stat_cost})"
        );
    }

    #[test]
    fn fd_open_read_write_close() {
        let (mut m, mut hyp, mut k) = boot();
        k.sys_create(&mut m, &mut hyp, "/tmp/fdtest")
            .expect("create");
        let fd = k.sys_open(&mut m, &mut hyp, "/tmp/fdtest").expect("open");
        assert_eq!(fd, Fd(3), "first fd after the standard streams");
        // Warm the file's data page so both paths run warm.
        k.sys_write_file(&mut m, &mut hyp, "/tmp/fdtest", 4096)
            .expect("warm");
        // Descriptor IO skips the path walk entirely.
        let syscalls = k.stats().syscalls;
        let c0 = m.cycles();
        k.sys_write_fd(&mut m, &mut hyp, fd, 4096).expect("write");
        k.sys_read_fd(&mut m, &mut hyp, fd, 4096).expect("read");
        let fd_cost = m.cycles() - c0;
        assert_eq!(k.stats().syscalls, syscalls + 2);
        let c1 = m.cycles();
        k.sys_write_file(&mut m, &mut hyp, "/tmp/fdtest", 4096)
            .expect("write");
        k.sys_read_file(&mut m, &mut hyp, "/tmp/fdtest", 4096)
            .expect("read");
        let path_cost = m.cycles() - c1;
        assert!(
            fd_cost < path_cost,
            "fd IO ({fd_cost}) avoids path walks ({path_cost})"
        );
        k.sys_close(&mut m, &mut hyp, fd).expect("close");
        let err = k.sys_write_fd(&mut m, &mut hyp, fd, 8).unwrap_err();
        assert!(matches!(err, KernelError::NoSuchPath(_)));
    }

    #[test]
    fn fds_are_per_task() {
        let (mut m, mut hyp, mut k) = boot();
        k.sys_create(&mut m, &mut hyp, "/tmp/shared")
            .expect("create");
        let fd = k.sys_open(&mut m, &mut hyp, "/tmp/shared").expect("open");
        let child = k.sys_fork(&mut m, &mut hyp).expect("fork");
        k.switch_to(&mut m, &mut hyp, child).expect("switch");
        // The child did not inherit the descriptor in this model.
        let err = k.sys_read_fd(&mut m, &mut hyp, fd, 8).unwrap_err();
        assert!(matches!(err, KernelError::NoSuchPath(_)));
        k.sys_exit(&mut m, &mut hyp, child, Pid(1)).expect("exit");
        k.sys_close(&mut m, &mut hyp, fd).expect("close in parent");
    }

    #[test]
    fn rename_moves_the_dentry() {
        let (mut m, mut hyp, mut k) = boot();
        k.sys_create(&mut m, &mut hyp, "/tmp/a").expect("create");
        k.sys_write_file(&mut m, &mut hyp, "/tmp/a", 512)
            .expect("write");
        let dentry = k.dentry_of("/tmp/a").unwrap();
        k.sys_rename(&mut m, &mut hyp, "/tmp/a", "/etc/b")
            .expect("rename");
        assert!(k.dentry_of("/tmp/a").is_none());
        assert_eq!(k.dentry_of("/etc/b"), Some(dentry));
        // New parent recorded.
        let parent = m.debug_read_phys(dentry.add(DentryField::Parent.byte_offset()));
        assert_eq!(parent, k.dentry_of("/etc").unwrap().raw());
        // The file content travels with the dentry.
        k.sys_read_file(&mut m, &mut hyp, "/etc/b", 512)
            .expect("read");
    }

    #[test]
    fn rename_of_missing_path_fails() {
        let (mut m, mut hyp, mut k) = boot();
        let err = k
            .sys_rename(&mut m, &mut hyp, "/tmp/ghost", "/tmp/x")
            .unwrap_err();
        assert!(matches!(err, KernelError::NoSuchPath(_)));
    }

    #[test]
    fn parent_path_cases() {
        assert_eq!(parent_path("/"), None);
        assert_eq!(parent_path("/bin"), Some("/"));
        assert_eq!(parent_path("/bin/sh"), Some("/bin"));
        assert_eq!(parent_path("relative"), Some("/"));
    }

    #[test]
    fn poll_irqs_with_nothing_pending() {
        let (mut m, mut hyp, mut k) = boot();
        assert_eq!(k.poll_irqs(&mut m, &mut hyp).expect("poll"), 0);
    }
}
