#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # hypernel-kernel
//!
//! A mini monolithic kernel substrate for the Hypernel (DAC 2018)
//! reproduction. (Top-level `Kernel` arrives in `kernel` module.)

pub mod abi;
pub mod attack;
pub mod compose;
pub mod kernel;
pub mod kobj;
pub mod layout;
pub mod pgalloc;
pub mod pgtable;
pub mod sched;
pub mod slab;
pub mod task;

pub use attack::{AttackOutcome, AttackStep, StepResult};
pub use compose::{
    ChannelInfo, ComposeState, ComposeStats, DomainInfo, DomainRole, RegionInfo, MAX_CHANNELS,
};
pub use kernel::{Kernel, KernelConfig, KernelError, KernelStats, MonitorHooks, MonitorMode};
pub use pgtable::{LinearMapMode, PtRoute};
pub use task::{Pid, Task};
