//! Kernel-side registry for composed multi-domain systems.
//!
//! `hypernel-compose` lowers a declarative system description —
//! protection domains, channels, shared memory regions — into concrete
//! kernel state through the `compose_*` methods on
//! [`Kernel`](crate::Kernel). This module holds the bookkeeping those
//! methods maintain: which pid backs which named domain, where each
//! channel's slab slot and each region's frames live, and the counters
//! the campaign coverage atlas reads back. Everything here is `Clone`
//! so a composed system snapshots with the kernel for warm-boot
//! forking, and every collection is a `Vec` in creation order so
//! iteration (and therefore the derived watch set) is deterministic.

use hypernel_machine::addr::{PhysAddr, VirtAddr, PAGE_SIZE};

use crate::task::Pid;

/// Whether a protection domain is a passive server or a client task
/// (microkit's two protection-domain flavors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainRole {
    /// Passive server: waits on channels, owns shared state.
    Server,
    /// Client: drives requests into servers.
    Client,
}

impl DomainRole {
    /// Stable lowercase name (used by TOML and coverage keys).
    pub fn name(self) -> &'static str {
        match self {
            Self::Server => "server",
            Self::Client => "client",
        }
    }
}

/// A lowered protection domain: one or more kernel tasks plus the
/// declared scheduling metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainInfo {
    /// Tasks backing the domain, in spawn order; `pids[0]` is the
    /// domain's principal task.
    pub pids: Vec<Pid>,
    /// Server or client.
    pub role: DomainRole,
    /// Declared priority (scheduling metadata only; recorded so the
    /// lowering is faithful to the description).
    pub priority: u64,
}

impl DomainInfo {
    /// The domain's principal task.
    pub fn pid(&self) -> Pid {
        self.pids[0]
    }
}

/// Byte size of one channel slot header (`from`, `to`, `capacity`) —
/// the immutable part the derived watch set covers.
pub const CHANNEL_HEADER_BYTES: u64 = 24;

/// Offset of the mutable per-channel data area (sequence counter +
/// last payload) inside the channel table page. Headers pack
/// contiguously from offset 0 so the derived watch spans of adjacent
/// channels coalesce into one registration; the churn of legitimate
/// sends lands up here, outside every watched span.
pub const CHANNEL_DATA_BASE: u64 = 2048;

/// Bytes of mutable data per channel slot (sequence word + payload
/// word).
pub const CHANNEL_DATA_BYTES: u64 = 16;

/// Maximum channels one table page can hold: headers must stay below
/// the data area and data must stay inside the page.
pub const MAX_CHANNELS: usize = (CHANNEL_DATA_BASE / CHANNEL_HEADER_BYTES) as usize;

const _: () = assert!(
    CHANNEL_DATA_BASE + (MAX_CHANNELS as u64) * CHANNEL_DATA_BYTES <= PAGE_SIZE,
    "channel data area overflows the table page"
);

/// A lowered channel: a slot in the shared channel table page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelInfo {
    /// The channel table page this slot lives in.
    pub table: PhysAddr,
    /// Slot index within the table.
    pub slot: usize,
    /// Sending domain's principal task.
    pub from: Pid,
    /// Receiving domain's principal task.
    pub to: Pid,
}

impl ChannelInfo {
    /// Physical address of this slot's (watched) header.
    pub fn header_pa(&self) -> PhysAddr {
        self.table.add(self.slot as u64 * CHANNEL_HEADER_BYTES)
    }

    /// Physical address of this slot's (unwatched) data words.
    pub fn data_pa(&self) -> PhysAddr {
        self.table
            .add(CHANNEL_DATA_BASE + self.slot as u64 * CHANNEL_DATA_BYTES)
    }
}

/// A lowered shared memory region: page frames mapped at the same
/// virtual address into the owner and every sharer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionInfo {
    /// Backing frames, one per page, in VA order.
    pub frames: Vec<PhysAddr>,
    /// Base virtual address of the mapping (identical in every domain
    /// that maps the region).
    pub va: VirtAddr,
    /// Whether the region is write-protected by the derived watch set.
    pub protect: bool,
    /// Owning domain's principal task.
    pub owner: Pid,
    /// Principal tasks of the sharing domains.
    pub sharers: Vec<Pid>,
}

/// Counters the compose lowering maintains (read back into the
/// `compose/*` coverage feature group).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComposeStats {
    /// Server domains spawned.
    pub server_domains: u64,
    /// Client domains spawned.
    pub client_domains: u64,
    /// Tasks spawned across all domains.
    pub domain_tasks: u64,
    /// Channels created.
    pub channels_created: u64,
    /// Legitimate messages sent over channels.
    pub channel_messages: u64,
    /// Shared regions mapped.
    pub regions_mapped: u64,
    /// Of those, regions covered by the derived watch set.
    pub protected_regions: u64,
    /// Individual user-space mappings installed for shared regions
    /// (owner + sharers, per page).
    pub shared_mappings: u64,
    /// Watch spans derived before coalescing.
    pub watch_spans_derived: u64,
    /// Spans eliminated by coalescing physically adjacent spans.
    pub watch_spans_merged: u64,
    /// Monitor-registration hypercalls actually issued.
    pub watch_calls_issued: u64,
}

/// The kernel's registry of composed state, in creation order.
#[derive(Debug, Clone, Default)]
pub struct ComposeState {
    /// Declared domains, `(name, info)`.
    pub domains: Vec<(String, DomainInfo)>,
    /// Declared channels, `(name, info)`.
    pub channels: Vec<(String, ChannelInfo)>,
    /// Declared regions, `(name, info)`.
    pub regions: Vec<(String, RegionInfo)>,
    /// The shared channel table page, allocated with the first channel.
    pub channel_table: Option<PhysAddr>,
    /// Next virtual address the region allocator will hand out.
    pub next_region_va: u64,
    /// Lowering counters.
    pub stats: ComposeStats,
}

/// Deterministic nonzero stamp the owner writes into the first word of
/// each shared-region page before the watch set arms (FNV-1a of the
/// region name, mixed with the page index, forced odd).
pub fn compose_stamp(region: &str, page: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in region.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    (h ^ page) | 1
}

/// Default base of the automatically assigned shared-region window
/// (clear of the user image, the mmap arena at `0x2000_0000` and the
/// stack top).
pub const REGION_VA_BASE: u64 = 0x6000_0000;

impl ComposeState {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self {
            next_region_va: REGION_VA_BASE,
            ..Self::default()
        }
    }

    /// The domain registered under `name`.
    pub fn domain(&self, name: &str) -> Option<&DomainInfo> {
        self.domains.iter().find(|(n, _)| n == name).map(|(_, d)| d)
    }

    /// The channel registered under `name`.
    pub fn channel(&self, name: &str) -> Option<&ChannelInfo> {
        self.channels
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
    }

    /// The region registered under `name`.
    pub fn region(&self, name: &str) -> Option<&RegionInfo> {
        self.regions.iter().find(|(n, _)| n == name).map(|(_, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_slot_geometry_is_page_safe() {
        let info = ChannelInfo {
            table: PhysAddr::new(0x40_0000),
            slot: MAX_CHANNELS - 1,
            from: Pid(1),
            to: Pid(2),
        };
        assert!(
            info.header_pa().raw() + CHANNEL_HEADER_BYTES <= info.table.raw() + CHANNEL_DATA_BASE
        );
        assert!(info.data_pa().raw() + CHANNEL_DATA_BYTES <= info.table.raw() + PAGE_SIZE);
    }

    #[test]
    fn registry_lookups_resolve_by_name() {
        let mut state = ComposeState::new();
        state.domains.push((
            "fs".into(),
            DomainInfo {
                pids: vec![Pid(2)],
                role: DomainRole::Server,
                priority: 10,
            },
        ));
        assert_eq!(state.domain("fs").map(DomainInfo::pid), Some(Pid(2)));
        assert!(state.domain("net").is_none());
        assert!(state.channel("c").is_none());
        assert!(state.region("r").is_none());
        assert_eq!(state.next_region_va, REGION_VA_BASE);
    }
}
