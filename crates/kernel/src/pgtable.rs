//! Kernel-side page-table management.
//!
//! All post-boot page-table edits funnel through [`PtManager::apply`],
//! which routes each descriptor write either **directly** (native and
//! KVM-guest configurations) or **through a hypercall to Hypersec**
//! (the Hypernel configuration, paper §6.2: "we modified the kernel to
//! force it to write onto the kernel page table via hypercalls instead of
//! directly modifying the page table").
//!
//! Boot-time construction of the linear map is trusted (secure boot, §4)
//! and uses cost-free direct writes via [`build_linear_map`].

use hypernel_machine::addr::{PhysAddr, VirtAddr, PAGE_SIZE, SECTION_SIZE};
use hypernel_machine::machine::{Exception, Hyp, Machine};
use hypernel_machine::pagetable::{
    self, plan_map, plan_protect, plan_unmap, Descriptor, EntryWrite, MapError, PagePerms,
};
use hypernel_machine::shadow::PageTag;

use crate::abi::Hypercall;
use crate::layout;
use crate::pgalloc::{FrameAllocator, OutOfFramesError};

/// How descriptor writes reach memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PtRoute {
    /// The kernel writes page tables itself (native / KVM-guest).
    Direct,
    /// Every write is submitted to Hypersec via hypercall (Hypernel).
    Hypercall,
}

/// How the kernel linear map is built (paper §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinearMapMode {
    /// Vanilla kernel: 2 MiB section (block) mappings. Page tables end up
    /// sharing sections with unrelated data — the protection-granularity
    /// gap.
    Sections,
    /// Instrumented kernel: 4 KiB page mappings, so page-table pages can
    /// be individually write-protected.
    Pages,
}

/// Errors from kernel page-table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PtError {
    /// The frame pool is exhausted.
    OutOfFrames,
    /// The planner could not express the request.
    Plan(MapError),
    /// A trap or denial occurred while applying the writes.
    Machine(Exception),
}

impl std::fmt::Display for PtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::OutOfFrames => write!(f, "out of physical frames"),
            Self::Plan(e) => write!(f, "mapping plan failed: {e}"),
            Self::Machine(e) => write!(f, "page-table update rejected: {e}"),
        }
    }
}

impl std::error::Error for PtError {}

impl From<OutOfFramesError> for PtError {
    fn from(_: OutOfFramesError) -> Self {
        Self::OutOfFrames
    }
}

impl From<MapError> for PtError {
    fn from(e: MapError) -> Self {
        Self::Plan(e)
    }
}

impl From<Exception> for PtError {
    fn from(e: Exception) -> Self {
        Self::Machine(e)
    }
}

/// Statistics for page-table maintenance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PtStats {
    /// Descriptor writes applied.
    pub entry_writes: u64,
    /// Descriptor writes routed through hypercalls.
    pub hypercall_writes: u64,
    /// Table pages registered with Hypersec.
    pub tables_registered: u64,
}

/// The kernel's page-table manager.
#[derive(Debug, Clone)]
pub struct PtManager {
    route: PtRoute,
    stats: PtStats,
    /// Quicklist of retired page-table pages, reused hot before fresh
    /// frames are taken (like Linux's historical pte quicklists) — this
    /// keeps per-exec table churn off the cold-frame path.
    pool: Vec<PhysAddr>,
}

impl PtManager {
    /// Creates a manager using `route` for descriptor writes.
    pub fn new(route: PtRoute) -> Self {
        Self {
            route,
            stats: PtStats::default(),
            pool: Vec::new(),
        }
    }

    /// Returns retired table pages to the quicklist.
    pub fn recycle(&mut self, pages: impl IntoIterator<Item = PhysAddr>) {
        self.pool.extend(pages);
    }

    /// Pages currently in the quicklist.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    fn take_page(&mut self, frames: &mut FrameAllocator) -> Result<PhysAddr, OutOfFramesError> {
        match self.pool.pop() {
            Some(p) => Ok(p),
            None => frames.alloc(),
        }
    }

    /// The active route.
    pub fn route(&self) -> PtRoute {
        self.route
    }

    /// Switches the route (done once, right after the `LOCK` hypercall).
    pub fn set_route(&mut self, route: PtRoute) {
        self.route = route;
    }

    /// Statistics.
    pub fn stats(&self) -> PtStats {
        self.stats
    }

    /// Applies one descriptor write via the active route.
    ///
    /// # Errors
    ///
    /// Propagates machine exceptions: under the hypercall route, Hypersec
    /// may deny the write; under the direct route the write may fault if
    /// the table page is read-only (which is exactly what happens when a
    /// rootkit tries to edit a protected table).
    pub fn apply(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        write: EntryWrite,
    ) -> Result<(), Exception> {
        self.stats.entry_writes += 1;
        match self.route {
            PtRoute::Direct => {
                m.write_u64(layout::kva(write.addr()), write.value, hyp)?;
            }
            PtRoute::Hypercall => {
                self.stats.hypercall_writes += 1;
                let (nr, args) = Hypercall::PtWrite {
                    table: write.table,
                    index: write.index,
                    value: write.value,
                }
                .encode();
                m.hvc(nr, args, hyp)?;
            }
        }
        Ok(())
    }

    /// Allocates and prepares a fresh table page: takes a frame, zeroes
    /// it (charged as one `clear_page`), and — under the hypercall route —
    /// registers it with Hypersec.
    ///
    /// # Errors
    ///
    /// Fails if the pool is empty or Hypersec rejects the registration.
    pub fn alloc_table(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        frames: &mut FrameAllocator,
        root: bool,
    ) -> Result<PhysAddr, PtError> {
        let table = self.take_page(frames)?;
        m.tag_page(table, PageTag::PageTable);
        // clear_page: modeled as a fixed stream of stores.
        m.charge(m.cost().cache_hit * 64);
        m.debug_zero_page(table);
        if self.route == PtRoute::Hypercall {
            self.stats.tables_registered += 1;
            let (nr, args) = Hypercall::PtRegisterTable { table, root }.encode();
            m.hvc(nr, args, hyp)?;
        }
        Ok(table)
    }

    /// Maps one 4 KiB page `va → pa` under `root`, allocating intermediate
    /// tables (quicklist-first) as needed. Returns the freshly linked
    /// table pages so the owner can retire them later.
    ///
    /// # Errors
    ///
    /// See [`PtError`].
    #[allow(clippy::too_many_arguments)] // mirrors the hardware operation's natural arity
    pub fn map_page(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        frames: &mut FrameAllocator,
        root: PhysAddr,
        va: VirtAddr,
        pa: PhysAddr,
        perms: PagePerms,
    ) -> Result<Vec<PhysAddr>, PtError> {
        // Pre-grab candidate table pages (a 4-level walk needs at most
        // three); unused ones go back to the quicklist.
        let mut candidates: Vec<PhysAddr> = Vec::new();
        for _ in 0..3 {
            match self.take_page(frames) {
                Ok(p) => {
                    // Zero before planning: the planner walks through
                    // freshly linked tables, and recycled quicklist pages
                    // still hold their previous contents.
                    m.debug_zero_page(p);
                    candidates.push(p);
                }
                Err(_) => break,
            }
        }
        let mut unused = candidates.clone();
        let plan_result = {
            let mut view = m.pt_view();
            plan_map(&mut view, root, va.raw(), pa, perms, 3, &mut || {
                unused.pop()
            })
        };
        let plan = match plan_result {
            Ok(p) => p,
            Err(e) => {
                self.pool.extend(candidates);
                return Err(e.into());
            }
        };
        self.pool.extend(unused);
        if perms.user {
            m.tag_page(pa, PageTag::UserData);
        }
        // Register the consumed tables (already zeroed above).
        for t in &plan.new_tables {
            m.tag_page(*t, PageTag::PageTable);
            m.charge(m.cost().cache_hit * 64);
            if self.route == PtRoute::Hypercall {
                self.stats.tables_registered += 1;
                let (nr, args) = Hypercall::PtRegisterTable {
                    table: *t,
                    root: false,
                }
                .encode();
                m.hvc(nr, args, hyp).map_err(PtError::Machine)?;
            }
        }
        for w in &plan.writes {
            self.apply(m, hyp, *w)?;
        }
        Ok(plan.new_tables)
    }

    /// Retires an entire address space: one `PT_UNREGISTER_TABLE`
    /// hypercall for the root (Hypersec unregisters the whole tree) and
    /// the table pages return to the quicklist. This is how exit/exec
    /// tear down an mm without one hypercall per descriptor.
    ///
    /// # Errors
    ///
    /// Propagates a Hypersec denial.
    pub fn retire_address_space(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        root: PhysAddr,
        tables: impl IntoIterator<Item = PhysAddr>,
    ) -> Result<(), PtError> {
        if self.route == PtRoute::Hypercall {
            let (nr, args) = Hypercall::PtUnregisterTable { table: root }.encode();
            m.hvc(nr, args, hyp)?;
        }
        self.pool.push(root);
        self.pool.extend(tables);
        Ok(())
    }

    /// Unmaps the page covering `va` under `root` and invalidates its TLB
    /// entry. Returns `true` if a mapping existed.
    ///
    /// # Errors
    ///
    /// Propagates denial/abort while applying the write.
    pub fn unmap_page(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        root: PhysAddr,
        va: VirtAddr,
    ) -> Result<bool, PtError> {
        let write = {
            let mut view = m.pt_view();
            plan_unmap(&mut view, root, va.raw())
        };
        match write {
            Some(w) => {
                self.apply(m, hyp, w)?;
                m.tlbi_va(va);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Changes the permissions of the existing leaf covering `va`.
    /// Returns `true` if a mapping existed.
    ///
    /// # Errors
    ///
    /// Propagates denial/abort while applying the write.
    pub fn protect_page(
        &mut self,
        m: &mut Machine,
        hyp: &mut dyn Hyp,
        root: PhysAddr,
        va: VirtAddr,
        perms: PagePerms,
    ) -> Result<bool, PtError> {
        let write = {
            let mut view = m.pt_view();
            plan_protect(&mut view, root, va.raw(), perms)
        };
        match write {
            Some(w) => {
                self.apply(m, hyp, w)?;
                m.tlbi_va(va);
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

/// Result of boot-time linear-map construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearMapInfo {
    /// Every table page used by the mapping (including intermediate
    /// levels) — the set Hypersec will write-protect at `LOCK`.
    pub table_pages: Vec<PhysAddr>,
    /// Number of leaf descriptors written.
    pub leaves: u64,
}

/// Builds the kernel linear map at boot: maps physical range
/// `[0, layout::SECURE_BASE)` at [`layout::LINEAR_BASE`] with
/// [`PagePerms::KERNEL_DATA`], using 2 MiB blocks or 4 KiB pages per
/// `mode`. Trusted boot code: writes go straight to physical memory with
/// no cycle cost.
///
/// # Errors
///
/// Returns [`PtError::OutOfFrames`] if the pool cannot supply the tables.
pub fn build_linear_map(
    m: &mut Machine,
    frames: &mut FrameAllocator,
    root: PhysAddr,
    mode: LinearMapMode,
) -> Result<LinearMapInfo, PtError> {
    let mut tables = vec![root];
    m.mem_mut().fill(root, PAGE_SIZE, 0);
    let mut leaves = 0u64;

    // Walk VA space in order, keeping a cursor of intermediate tables so
    // each is resolved once instead of re-walking per leaf.
    let leaf_level = match mode {
        LinearMapMode::Sections => 2,
        LinearMapMode::Pages => 3,
    };
    let step = match mode {
        LinearMapMode::Sections => SECTION_SIZE,
        LinearMapMode::Pages => PAGE_SIZE,
    };

    let mut cursor: [Option<(u64, PhysAddr)>; 4] = [Some((u64::MAX, root)); 4];
    cursor[0] = Some((0, root));

    let mut pa = 0u64;
    while pa < layout::SECURE_BASE {
        let va = layout::LINEAR_BASE + pa;
        let input = va & ((1u64 << 48) - 1);
        // Resolve (or create) intermediate tables down to the leaf level.
        let mut table = root;
        for level in 0..leaf_level {
            let idx = (input >> (12 + 9 * (3 - level))) & 0x1FF;
            let cached = cursor[(level + 1) as usize];
            let key = input >> (12 + 9 * (3 - level));
            if let Some((k, t)) = cached {
                if k == key {
                    table = t;
                    continue;
                }
            }
            let eaddr = pagetable::entry_addr(table, input, level);
            let raw = m.mem_mut().read_u64(eaddr);
            let next = match Descriptor::decode(raw, level) {
                Descriptor::Table { next } => next,
                Descriptor::Invalid => {
                    let fresh = frames.alloc()?;
                    m.mem_mut().fill(fresh, PAGE_SIZE, 0);
                    tables.push(fresh);
                    m.mem_mut()
                        .write_u64(eaddr, Descriptor::Table { next: fresh }.encode());
                    fresh
                }
                Descriptor::Leaf { .. } => unreachable!("linear map built in order"),
            };
            cursor[(level + 1) as usize] = Some((key, next));
            table = next;
            let _ = idx;
        }
        let eaddr = pagetable::entry_addr(table, input, leaf_level);
        // The kernel image is text: read-only + executable (W^X from the
        // start); everything else is non-executable data.
        let perms = if pa + step <= layout::KERNEL_IMAGE_BASE + layout::KERNEL_IMAGE_SIZE {
            PagePerms::KERNEL_TEXT
        } else {
            PagePerms::KERNEL_DATA
        };
        m.mem_mut().write_u64(
            eaddr,
            Descriptor::Leaf {
                out: PhysAddr::new(pa),
                perms,
            }
            .encode(),
        );
        leaves += 1;
        pa += step;
    }
    Ok(LinearMapInfo {
        table_pages: tables,
        leaves,
    })
}

/// Convenience: reads the descriptor that currently maps `va` under
/// `root` (coherently), for assertions and verification.
pub fn read_leaf(m: &mut Machine, root: PhysAddr, va: VirtAddr) -> Option<(PhysAddr, PagePerms)> {
    let mut view = m.pt_view();
    match pagetable::walk(&mut view, root, va.raw()) {
        Ok(res) => Some((res.out, res.perms)),
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypernel_machine::machine::{MachineConfig, NullHyp};
    use hypernel_machine::regs::{sctlr, ExceptionLevel, SysReg};

    fn machine() -> Machine {
        Machine::new(MachineConfig {
            dram_size: layout::DRAM_SIZE,
            ..MachineConfig::default()
        })
    }

    fn frames() -> FrameAllocator {
        FrameAllocator::new(
            PhysAddr::new(layout::FRAME_POOL_BASE),
            PhysAddr::new(layout::FRAME_POOL_END),
        )
    }

    #[test]
    fn linear_map_pages_mode_translates_everywhere() {
        let mut m = machine();
        let mut f = frames();
        let root = f.alloc().unwrap();
        let info = build_linear_map(&mut m, &mut f, root, LinearMapMode::Pages).unwrap();
        assert_eq!(info.leaves, layout::SECURE_BASE / PAGE_SIZE);
        // Probe a few addresses across the range.
        for pa in [0u64, 0x1234_5000, layout::SECURE_BASE - PAGE_SIZE] {
            let (out, perms) =
                read_leaf(&mut m, root, layout::kva(PhysAddr::new(pa))).expect("mapped");
            assert_eq!(out, PhysAddr::new(pa));
            assert!(!perms.user);
            if pa < layout::KERNEL_IMAGE_SIZE {
                assert!(!perms.write && perms.exec, "kernel text is W^X");
            } else {
                assert!(perms.write && !perms.exec, "kernel data is W^X");
            }
        }
    }

    #[test]
    fn linear_map_sections_mode_uses_blocks() {
        let mut m = machine();
        let mut f = frames();
        let root = f.alloc().unwrap();
        let info = build_linear_map(&mut m, &mut f, root, LinearMapMode::Sections).unwrap();
        assert_eq!(info.leaves, layout::SECURE_BASE / SECTION_SIZE);
        // Sections need far fewer tables than pages mode.
        assert!(
            info.table_pages.len() < 16,
            "got {}",
            info.table_pages.len()
        );
        let (out, _) = read_leaf(&mut m, root, layout::kva(PhysAddr::new(0x12_3456))).unwrap();
        assert_eq!(out, PhysAddr::new(0x12_3456));
    }

    #[test]
    fn linear_map_never_reaches_secure_region() {
        let mut m = machine();
        let mut f = frames();
        let root = f.alloc().unwrap();
        build_linear_map(&mut m, &mut f, root, LinearMapMode::Pages).unwrap();
        let secure_va = VirtAddr::new(layout::LINEAR_BASE + layout::SECURE_BASE);
        assert!(read_leaf(&mut m, root, secure_va).is_none());
    }

    #[test]
    fn direct_route_map_and_access() {
        let mut m = machine();
        let mut f = frames();
        let mut hyp = NullHyp;
        let root = f.alloc().unwrap();
        build_linear_map(&mut m, &mut f, root, LinearMapMode::Pages).unwrap();
        m.el2_write_sysreg(SysReg::TTBR1_EL1, root.raw());
        m.el2_write_sysreg(SysReg::TTBR0_EL1, root.raw());
        m.el2_write_sysreg(SysReg::SCTLR_EL1, sctlr::M);
        m.set_el(ExceptionLevel::El1);

        let mut pt = PtManager::new(PtRoute::Direct);
        let user_root = pt.alloc_table(&mut m, &mut hyp, &mut f, true).unwrap();
        let frame = f.alloc().unwrap();
        pt.map_page(
            &mut m,
            &mut hyp,
            &mut f,
            user_root,
            VirtAddr::new(0x40_0000),
            frame,
            PagePerms::USER_DATA,
        )
        .unwrap();
        let (out, perms) = read_leaf(&mut m, user_root, VirtAddr::new(0x40_0000)).unwrap();
        assert_eq!(out, frame);
        assert!(perms.user);
        assert!(pt.stats().entry_writes >= 4);
        assert_eq!(pt.stats().hypercall_writes, 0);
    }

    #[test]
    fn unmap_and_protect() {
        let mut m = machine();
        let mut f = frames();
        let mut hyp = NullHyp;
        let root = f.alloc().unwrap();
        build_linear_map(&mut m, &mut f, root, LinearMapMode::Pages).unwrap();
        m.el2_write_sysreg(SysReg::TTBR1_EL1, root.raw());
        m.el2_write_sysreg(SysReg::SCTLR_EL1, sctlr::M);
        m.set_el(ExceptionLevel::El1);

        let mut pt = PtManager::new(PtRoute::Direct);
        let user_root = pt.alloc_table(&mut m, &mut hyp, &mut f, true).unwrap();
        let frame = f.alloc().unwrap();
        let va = VirtAddr::new(0x40_0000);
        pt.map_page(
            &mut m,
            &mut hyp,
            &mut f,
            user_root,
            va,
            frame,
            PagePerms::USER_DATA,
        )
        .unwrap();
        assert!(pt
            .protect_page(&mut m, &mut hyp, user_root, va, PagePerms::KERNEL_RO)
            .unwrap());
        let (_, perms) = read_leaf(&mut m, user_root, va).unwrap();
        assert!(!perms.write);
        assert!(pt.unmap_page(&mut m, &mut hyp, user_root, va).unwrap());
        assert!(read_leaf(&mut m, user_root, va).is_none());
        assert!(!pt.unmap_page(&mut m, &mut hyp, user_root, va).unwrap());
    }

    #[test]
    fn hypercall_route_fails_without_el2_software() {
        let mut m = machine();
        let mut f = frames();
        let mut hyp = NullHyp;
        let root = f.alloc().unwrap();
        build_linear_map(&mut m, &mut f, root, LinearMapMode::Pages).unwrap();
        m.el2_write_sysreg(SysReg::TTBR1_EL1, root.raw());
        m.el2_write_sysreg(SysReg::SCTLR_EL1, sctlr::M);
        m.set_el(ExceptionLevel::El1);

        let mut pt = PtManager::new(PtRoute::Hypercall);
        let err = pt.alloc_table(&mut m, &mut hyp, &mut f, false).unwrap_err();
        assert!(matches!(err, PtError::Machine(Exception::Denied(_))));
    }

    #[test]
    fn pt_error_display() {
        assert_eq!(PtError::OutOfFrames.to_string(), "out of physical frames");
        assert!(PtError::Plan(MapError::OutOfTablePages)
            .to_string()
            .contains("plan failed"));
    }
}
