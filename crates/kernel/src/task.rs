//! Tasks (processes) and their address spaces.

use std::collections::HashMap;

use hypernel_machine::addr::{PhysAddr, VirtAddr};

/// A per-process file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub u32);

impl std::fmt::Display for Fd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fd {}", self.0)
    }
}

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u64);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid {}", self.0)
    }
}

/// A lazily populated user mapping created by `mmap` (demand paging).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vma {
    /// First page of the region.
    pub base: VirtAddr,
    /// Region length in bytes (page multiple).
    pub len: u64,
}

impl Vma {
    /// Returns `true` if `va` falls inside this region.
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.base && va.raw() < self.base.raw() + self.len
    }
}

/// Kernel-side process state.
#[derive(Debug, Clone)]
pub struct Task {
    /// Process id.
    pub pid: Pid,
    /// Address-space id (tags TLB entries).
    pub asid: u16,
    /// Stage-1 root table for the user (TTBR0) half.
    pub user_root: PhysAddr,
    /// Physical address of this task's `cred` object (slab slot).
    pub cred: PhysAddr,
    /// Eagerly mapped user pages: `(va, frame, owned)`. `owned` marks
    /// private anonymous frames freed at exit; shared/page-cache frames
    /// are not.
    pub user_pages: Vec<(VirtAddr, PhysAddr, bool)>,
    /// Intermediate/leaf table pages owned by this address space
    /// (excluding `user_root`), retired at exit.
    pub table_pages: Vec<PhysAddr>,
    /// Kernel page holding the signal-handler table.
    pub sigactions: PhysAddr,
    /// Kernel stack frames.
    pub kernel_stack: Vec<PhysAddr>,
    /// Open file descriptors: fd → dentry.
    pub fds: HashMap<Fd, PhysAddr>,
    /// Next file descriptor number.
    pub next_fd: u32,
    /// Demand-paged regions and the frames faulted into them.
    pub vmas: Vec<Vma>,
    /// Frames faulted into demand regions: `(va, frame)`.
    pub demand_pages: Vec<(VirtAddr, PhysAddr)>,
}

impl Task {
    /// Looks up the VMA covering `va`, if any.
    pub fn vma_for(&self, va: VirtAddr) -> Option<&Vma> {
        self.vmas.iter().find(|v| v.contains(va))
    }

    /// Returns `true` if `va` is an eagerly or demand-mapped user page.
    pub fn page_mapped(&self, va: VirtAddr) -> bool {
        let page = va.page_base();
        self.user_pages.iter().any(|(v, _, _)| *v == page)
            || self.demand_pages.iter().any(|(v, _)| *v == page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vma_containment() {
        let vma = Vma {
            base: VirtAddr::new(0x10000),
            len: 0x3000,
        };
        assert!(vma.contains(VirtAddr::new(0x10000)));
        assert!(vma.contains(VirtAddr::new(0x12FFF)));
        assert!(!vma.contains(VirtAddr::new(0x13000)));
        assert!(!vma.contains(VirtAddr::new(0xFFFF)));
    }

    #[test]
    fn pid_display() {
        assert_eq!(Pid(7).to_string(), "pid 7");
    }
}
