//! Slab allocator for kernel objects.
//!
//! Objects of one type are packed into dedicated pages, as the Linux slab
//! allocator does. This packing is what the paper's Table 2 estimation
//! leans on: "the number of interrupts that occur when monitoring the
//! entire object would be the same as the number of faults that occur
//! when the target kernel data objects are aggregated in specific pages"
//! and those pages are monitored read-only (§7.2).

use hypernel_machine::addr::{PhysAddr, PAGE_SIZE};

use crate::kobj::ObjectKind;
use crate::pgalloc::{FrameAllocator, OutOfFramesError};

/// Statistics for one slab cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlabStats {
    /// Objects currently allocated.
    pub live: u64,
    /// Total allocations performed.
    pub allocated_total: u64,
    /// Backing pages acquired from the frame allocator.
    pub pages: u64,
}

/// A slab cache for one [`ObjectKind`].
///
/// ```
/// use hypernel_machine::addr::PhysAddr;
/// use hypernel_kernel::kobj::ObjectKind;
/// use hypernel_kernel::pgalloc::FrameAllocator;
/// use hypernel_kernel::slab::SlabCache;
///
/// let mut frames = FrameAllocator::new(PhysAddr::new(0x10_0000), PhysAddr::new(0x20_0000));
/// let mut creds = SlabCache::new(ObjectKind::Cred);
/// let a = creds.alloc(&mut frames)?;
/// let b = creds.alloc(&mut frames)?;
/// assert_eq!(a.page_base(), b.page_base(), "objects pack into one page");
/// # Ok::<(), hypernel_kernel::pgalloc::OutOfFramesError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SlabCache {
    kind: ObjectKind,
    partial: Vec<(PhysAddr, u64)>, // (page, next slot index)
    free_objects: Vec<PhysAddr>,
    pages: Vec<PhysAddr>,
    stats: SlabStats,
}

impl SlabCache {
    /// Creates an empty cache for `kind`.
    pub fn new(kind: ObjectKind) -> Self {
        Self {
            kind,
            partial: Vec::new(),
            free_objects: Vec::new(),
            pages: Vec::new(),
            stats: SlabStats::default(),
        }
    }

    /// The object type this cache serves.
    pub fn kind(&self) -> ObjectKind {
        self.kind
    }

    /// Objects per backing page.
    pub fn slots_per_page(&self) -> u64 {
        PAGE_SIZE / self.kind.bytes()
    }

    /// Allocates one object, taking a fresh page from `frames` when no
    /// slot is free.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFramesError`] if a new backing page is needed but
    /// the pool is exhausted.
    pub fn alloc(&mut self, frames: &mut FrameAllocator) -> Result<PhysAddr, OutOfFramesError> {
        self.stats.allocated_total += 1;
        self.stats.live += 1;
        if let Some(obj) = self.free_objects.pop() {
            return Ok(obj);
        }
        if let Some((page, slot)) = self.partial.last_mut() {
            let obj = page.add(*slot * self.kind.bytes());
            *slot += 1;
            if *slot >= self.slots_per_page() {
                self.partial.pop();
            }
            return Ok(obj);
        }
        let page = match frames.alloc() {
            Ok(p) => p,
            Err(e) => {
                self.stats.allocated_total -= 1;
                self.stats.live -= 1;
                return Err(e);
            }
        };
        self.pages.push(page);
        self.stats.pages += 1;
        self.partial.push((page, 1));
        Ok(page)
    }

    /// Returns an object slot to the cache. Pages are never returned to
    /// the frame allocator (matching slab behaviour under steady churn).
    pub fn free(&mut self, obj: PhysAddr) {
        debug_assert!(
            obj.offset_from(obj.page_base())
                .is_multiple_of(self.kind.bytes()),
            "address is not an object slot boundary"
        );
        self.stats.live -= 1;
        self.free_objects.push(obj);
    }

    /// Statistics.
    pub fn stats(&self) -> SlabStats {
        self.stats
    }

    /// All backing pages acquired so far — the page set a page-granularity
    /// monitor would have to write-protect.
    pub fn backing_pages(&self) -> &[PhysAddr] {
        &self.pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames() -> FrameAllocator {
        FrameAllocator::new(PhysAddr::new(0x10_0000), PhysAddr::new(0x40_0000))
    }

    #[test]
    fn packs_objects_into_pages() {
        let mut f = frames();
        let mut cache = SlabCache::new(ObjectKind::Cred);
        let per_page = cache.slots_per_page();
        assert_eq!(per_page, 32); // 4096 / 128
        let objs: Vec<_> = (0..per_page)
            .map(|_| cache.alloc(&mut f).unwrap())
            .collect();
        assert!(objs.iter().all(|o| o.page_base() == objs[0].page_base()));
        assert_eq!(cache.stats().pages, 1);
        // One more spills to a second page.
        let next = cache.alloc(&mut f).unwrap();
        assert_ne!(next.page_base(), objs[0].page_base());
        assert_eq!(cache.stats().pages, 2);
    }

    #[test]
    fn objects_are_disjoint() {
        let mut f = frames();
        let mut cache = SlabCache::new(ObjectKind::Dentry);
        let a = cache.alloc(&mut f).unwrap();
        let b = cache.alloc(&mut f).unwrap();
        assert_eq!(b.offset_from(a), ObjectKind::Dentry.bytes());
    }

    #[test]
    fn free_slot_is_reused() {
        let mut f = frames();
        let mut cache = SlabCache::new(ObjectKind::Cred);
        let a = cache.alloc(&mut f).unwrap();
        let _b = cache.alloc(&mut f).unwrap();
        cache.free(a);
        assert_eq!(cache.alloc(&mut f).unwrap(), a);
        assert_eq!(cache.stats().live, 2);
        assert_eq!(cache.stats().allocated_total, 3);
    }

    #[test]
    fn dentry_slots_leave_tail_slack() {
        let cache = SlabCache::new(ObjectKind::Dentry);
        // 4096 / 192 = 21 slots, 64 bytes of tail slack — objects never
        // straddle a page boundary.
        assert_eq!(cache.slots_per_page(), 21);
    }

    #[test]
    fn exhaustion_is_clean() {
        let mut tiny = FrameAllocator::new(PhysAddr::new(0x1000), PhysAddr::new(0x2000));
        let mut cache = SlabCache::new(ObjectKind::Cred);
        for _ in 0..32 {
            cache.alloc(&mut tiny).unwrap();
        }
        assert!(cache.alloc(&mut tiny).is_err());
        assert_eq!(cache.stats().live, 32);
    }

    #[test]
    fn backing_pages_exposed_for_page_granularity_monitor() {
        let mut f = frames();
        let mut cache = SlabCache::new(ObjectKind::Cred);
        for _ in 0..40 {
            cache.alloc(&mut f).unwrap();
        }
        assert_eq!(cache.backing_pages().len(), 2);
    }
}
