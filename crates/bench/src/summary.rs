//! Machine-readable bench summaries.
//!
//! When `HYPERNEL_BENCH_DIR` is set, each bench target additionally
//! writes its headline numbers as `<dir>/<name>.json`:
//!
//! ```json
//! {"schema":1,"kind":"hypernel-bench-summary","name":"table1_lmbench",
//!  "metrics":{"avg_hypernel_overhead_pct":8.8, …}}
//! ```
//!
//! `hypernel-analyze bench --dir <dir>` aggregates those into a dated
//! `BENCH_<date>.json` trajectory and diffs it against a committed
//! baseline — the CI perf gate. Without the variable set, benches
//! behave exactly as before and write nothing.

use hypernel::telemetry::json::Json;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Schema version of the summary documents (kept in lockstep with
/// `hypernel-analyze`'s expectations).
pub const SUMMARY_SCHEMA: u64 = 1;
/// `kind` tag of a summary document.
pub const SUMMARY_KIND: &str = "hypernel-bench-summary";

/// Headline metrics of one bench target, keyed by metric name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchSummary {
    /// Bench target name (used as the output file stem).
    pub name: String,
    /// Metric name → value. Keys should be stable across runs so the
    /// trajectory diff lines up.
    pub metrics: BTreeMap<String, f64>,
}

impl BenchSummary {
    /// Starts an empty summary for the named bench target.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            metrics: BTreeMap::new(),
        }
    }

    /// Records one metric. Non-finite values are dropped (JSON cannot
    /// carry them and a NaN metric is meaningless to diff).
    pub fn metric(&mut self, key: &str, value: f64) -> &mut Self {
        if value.is_finite() {
            self.metrics.insert(metric_key(key), value);
        }
        self
    }

    /// Serializes to the summary document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::UInt(SUMMARY_SCHEMA)),
            ("kind", Json::str(SUMMARY_KIND)),
            ("name", Json::str(&self.name)),
            (
                "metrics",
                Json::Object(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Float(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes `<HYPERNEL_BENCH_DIR>/<name>.json` when the variable is
    /// set; returns the path written. A write failure is reported on
    /// stderr but never fails the bench itself.
    pub fn write_if_requested(&self) -> Option<PathBuf> {
        let dir = PathBuf::from(std::env::var_os("HYPERNEL_BENCH_DIR")?);
        let path = dir.join(format!("{}.json", self.name));
        let attempt = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&path, format!("{}\n", self.to_json())));
        match attempt {
            Ok(()) => {
                eprintln!("bench summary: {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!(
                    "warning: cannot write bench summary {}: {e}",
                    path.display()
                );
                None
            }
        }
    }
}

/// Normalizes a human label into a stable metric key:
/// `"pipe lat"` → `pipe_lat`, `"fork+exit"` → `fork_exit`.
pub fn metric_key(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut last_sep = true;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            last_sep = false;
        } else if !last_sep {
            out.push('_');
            last_sep = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_normalize_and_nan_is_dropped() {
        assert_eq!(metric_key("pipe lat"), "pipe_lat");
        assert_eq!(metric_key("fork+exit"), "fork_exit");
        assert_eq!(metric_key("Signal  Ovh!"), "signal_ovh");
        let mut s = BenchSummary::new("t");
        s.metric("ok", 1.5).metric("bad", f64::NAN);
        assert_eq!(s.metrics.len(), 1);
    }

    #[test]
    fn summary_document_shape() {
        let mut s = BenchSummary::new("table1_lmbench");
        s.metric("avg hypernel overhead pct", 8.8);
        let doc = Json::parse(&s.to_json().to_string()).expect("round-trip");
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some(SUMMARY_KIND));
        assert_eq!(
            doc.get("name").and_then(Json::as_str),
            Some("table1_lmbench")
        );
        let got = doc
            .get("metrics")
            .and_then(|m| m.get("avg_hypernel_overhead_pct"))
            .and_then(Json::as_f64);
        assert_eq!(got, Some(8.8));
    }
}
