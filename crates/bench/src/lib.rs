#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Shared helpers for the Hypernel benchmark harnesses.
//!
//! Each `benches/*.rs` target regenerates one table or figure of the
//! paper; this crate provides the system drivers and table formatting
//! they share.

use hypernel::{Mode, System};
use hypernel_kernel::kernel::KernelError;
use hypernel_workloads::{apps, lmbench, AppBenchmark, LmbenchOp, Measurement};

pub mod summary;

/// Iterations per LMbench operation (LMbench itself repeats and averages;
/// the simulation is deterministic, so fewer repetitions suffice — the
/// repetitions still matter because cache, TLB and allocator state evolve
/// across them).
pub const LMBENCH_ITERS: u64 = 100;

/// Iterations per LMbench operation, honoring `HYPERNEL_BENCH_ITERS`
/// when set (the smoke/CI path uses a small count to stay fast); falls
/// back to [`LMBENCH_ITERS`].
pub fn lmbench_iters() -> u64 {
    std::env::var("HYPERNEL_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(LMBENCH_ITERS)
}

/// Runs one LMbench op on a freshly booted system of the given mode.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn lmbench_on(mode: Mode, op: LmbenchOp) -> Result<Measurement, KernelError> {
    let mut sys = System::boot(mode)?;
    let (kernel, machine, hyp) = sys.parts();
    lmbench::run_op(kernel, machine, hyp, op, lmbench_iters())
}

/// Runs one application benchmark on a freshly booted system.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn app_on(mode: Mode, bench: AppBenchmark) -> Result<Measurement, KernelError> {
    let mut sys = System::boot(mode)?;
    let (kernel, machine, hyp) = sys.parts();
    apps::prepare(kernel, machine, hyp, bench)?;
    apps::run(kernel, machine, hyp, bench, 1, 42)
}

/// Formats a signed percentage (`0.155` → `+15.5%`).
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Prints a horizontal rule of `width` dashes.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.155), "+15.5%");
        assert_eq!(pct(-0.031), "-3.1%");
    }
}
