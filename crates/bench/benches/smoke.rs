//! **Smoke** — a fast, deterministic bench pass for CI.
//!
//! Runs a representative slice of the paper's evaluation in a few
//! seconds: three LMbench ops across all three configurations (Table 1
//! shape) and one monitored app's trap counts (Table 2 shape). The
//! simulation is fully deterministic, so the emitted summary is
//! bit-stable across hosts and a committed baseline trajectory can gate
//! regressions in CI.
//!
//! Run with:
//!
//! ```sh
//! HYPERNEL_BENCH_DIR=target/bench-summaries HYPERNEL_BENCH_ITERS=20 \
//!     cargo bench -p hypernel-bench --bench smoke
//! ```

use hypernel::kernel::kernel::{MonitorHooks, MonitorMode};
use hypernel::{Mode, System};
use hypernel_bench::summary::BenchSummary;
use hypernel_bench::{lmbench_on, pct};
use hypernel_workloads::{apps, AppBenchmark, LmbenchOp};

/// The Table 1 slice: the cheapest op, a mid-cost op, and the most
/// expensive op — enough to catch cost-model drift at every scale.
const OPS: &[LmbenchOp] = &[
    LmbenchOp::SyscallStat,
    LmbenchOp::PipeLatency,
    LmbenchOp::ForkExit,
];

fn monitored_trap_events(bench: AppBenchmark, mode: MonitorMode) -> u64 {
    let mut sys = System::boot(Mode::Hypernel).expect("hypernel boot");
    {
        let (kernel, machine, hyp) = sys.parts();
        apps::prepare(kernel, machine, hyp, bench).expect("prepare");
        kernel
            .arm_monitor_hooks(machine, hyp, MonitorHooks { mode })
            .expect("arm hooks");
    }
    sys.reset_mbm_stats();
    {
        let (kernel, machine, hyp) = sys.parts();
        apps::run(kernel, machine, hyp, bench, 1, 42).expect("run");
    }
    let events = sys.mbm_stats().expect("mbm attached").events_matched;
    sys.parts().0.set_monitor_hooks(None);
    let _ = sys.service_interrupts();
    events
}

fn main() {
    let mut summary = BenchSummary::new("smoke");
    println!("smoke bench: {} lmbench op(s), 1 monitored app", OPS.len());

    for &op in OPS {
        let native = lmbench_on(Mode::Native, op).expect("native run");
        let hypernel = lmbench_on(Mode::Hypernel, op).expect("hypernel run");
        let overhead = hypernel.overhead_vs(&native);
        println!(
            "  {:<15} native {:>8.0} cyc/iter, hypernel {:>8.0} cyc/iter ({})",
            op.label(),
            native.cycles_per_iter(),
            hypernel.cycles_per_iter(),
            pct(overhead)
        );
        summary
            .metric(
                &format!("{} native_cycles", op.label()),
                native.cycles_per_iter(),
            )
            .metric(
                &format!("{} hypernel_cycles", op.label()),
                hypernel.cycles_per_iter(),
            )
            .metric(
                &format!("{} hyp_overhead_pct", op.label()),
                overhead * 100.0,
            );
    }

    let bench = AppBenchmark::Untar;
    let word = monitored_trap_events(bench, MonitorMode::SensitiveFields);
    let page = monitored_trap_events(bench, MonitorMode::WholeObject);
    println!(
        "  {:<15} word-granularity {} trap(s), whole-object {} trap(s)",
        bench.label(),
        word,
        page
    );
    summary
        .metric(&format!("{} word_events", bench.label()), word as f64)
        .metric(&format!("{} page_events", bench.label()), page as f64);

    summary.write_if_requested();
}
