//! **Sensitivity analysis**: do the paper's overhead results depend on
//! the exact cycle-cost calibration?
//!
//! The same Table 1 operations run under two independent calibration
//! points — the big core (Cortex-A57-class, the paper's measurement
//! core) and the platform's little core (Cortex-A53-class). If the
//! overhead *shape* (who wins, roughly by how much) survives the swap,
//! the reproduction's conclusions are driven by mechanism counts
//! (hypercalls, traps, faults, walks), not by one lucky constant set.
//!
//! Run with `cargo bench -p hypernel-bench --bench sensitivity_cost`.

use hypernel::machine::cost::CostModel;
use hypernel::machine::machine::MachineConfig;
use hypernel::workloads::{lmbench, LmbenchOp};
use hypernel::{Mode, SystemBuilder};
use hypernel_bench::{pct, rule};

fn overheads(cost: CostModel, op: LmbenchOp) -> (f64, f64) {
    let run = |mode| {
        let mut sys = SystemBuilder::new(mode)
            .machine_config(MachineConfig {
                cost,
                ..MachineConfig::default()
            })
            .build()
            .expect("boot");
        let (kernel, machine, hyp) = sys.parts();
        lmbench::run_op(kernel, machine, hyp, op, 50)
            .expect("op")
            .cycles_per_iter()
    };
    let native = run(Mode::Native);
    (
        run(Mode::KvmGuest) / native - 1.0,
        run(Mode::Hypernel) / native - 1.0,
    )
}

fn main() {
    println!("Sensitivity: Table 1 overheads under two cost calibrations");
    rule(84);
    println!(
        "{:<15} | {:>10} {:>10} | {:>10} {:>10}",
        "", "A57 (big)", "", "A53 (little)", ""
    );
    println!(
        "{:<15} | {:>10} {:>10} | {:>10} {:>10}",
        "test", "kvm ovh", "hyp ovh", "kvm ovh", "hyp ovh"
    );
    rule(84);
    let ops = [
        LmbenchOp::SyscallStat,
        LmbenchOp::PipeLatency,
        LmbenchOp::ForkExit,
        LmbenchOp::PageFault,
        LmbenchOp::Mmap,
    ];
    let mut agree = true;
    for op in ops {
        let (kvm_big, hyp_big) = overheads(CostModel::calibrated(), op);
        let (kvm_little, hyp_little) = overheads(CostModel::cortex_a53(), op);
        // Shape check: ordering of configurations is calibration-invariant.
        if (kvm_big > hyp_big) != (kvm_little > hyp_little) && (kvm_big - hyp_big).abs() > 0.03 {
            agree = false;
        }
        println!(
            "{:<15} | {:>10} {:>10} | {:>10} {:>10}",
            op.label(),
            pct(kvm_big),
            pct(hyp_big),
            pct(kvm_little),
            pct(hyp_little),
        );
    }
    rule(84);
    println!(
        "configuration ordering preserved across calibrations: {}",
        if agree { "yes" } else { "NO — investigate" }
    );
    println!("(mechanism counts — hypercalls, traps, faults, nested walks — drive the");
    println!("shape; the calibration only scales it.)");
}
