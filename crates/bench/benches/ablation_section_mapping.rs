//! **Ablation: 2 MiB-section vs 4 KiB-page linear map** (paper §6.2).
//!
//! "Normally the Linux kernel for AArch64 allocates memory blocks in the
//! kernel linear region in 2MB sections … if we directly enforce the
//! read-only policy on the vanilla kernel, we have to enforce it on each
//! section containing such page tables, leading to a protection
//! granularity gap issue. To prevent this issue, we instead forced the
//! kernel to allocate memory spaces in 4KB pages."
//!
//! This harness runs the same fork-heavy workload on Hypernel with both
//! linear-map modes. In section mode, write-protecting a page-table page
//! write-protects its whole 2 MiB section; every kernel data write that
//! happens to share the section then faults and must be emulated by
//! Hypersec — the cost the paper's instrumentation removes.
//!
//! Run with `cargo bench -p hypernel-bench --bench ablation_section_mapping`.

use hypernel::kernel::task::Pid;
use hypernel::{Mode, SystemBuilder};
use hypernel_bench::{pct, rule};

struct Outcome {
    cycles: u64,
    emulated_writes: u64,
    hypercalls: u64,
}

fn run(sections: bool) -> Outcome {
    let mut sys = SystemBuilder::new(Mode::Hypernel)
        .section_linear_map(sections)
        .build()
        .expect("boot");
    let (kernel, machine, hyp) = sys.parts();
    let start = machine.cycles();
    for i in 0..20 {
        let child = kernel.sys_fork(machine, hyp).expect("fork");
        kernel.switch_to(machine, hyp, child).expect("switch");
        let path = format!("/tmp/s{i}");
        kernel.sys_create(machine, hyp, &path).expect("create");
        kernel
            .sys_write_file(machine, hyp, &path, 8192)
            .expect("write");
        kernel.sys_exit(machine, hyp, child, Pid(1)).expect("exit");
    }
    Outcome {
        cycles: machine.cycles() - start,
        emulated_writes: kernel.stats().emulated_writes,
        hypercalls: machine.stats().hypercalls,
    }
}

fn main() {
    println!("Ablation: linear-map granularity under Hypernel (paper §6.2)");
    println!("workload: 20x (fork + file create/write + exit)");
    rule(76);
    println!(
        "{:<22} | {:>12} | {:>16} | {:>12}",
        "linear map", "cycles", "emulated writes", "hypercalls"
    );
    rule(76);
    let pages = run(false);
    let sections = run(true);
    println!(
        "{:<22} | {:>12} | {:>16} | {:>12}",
        "4 KiB pages (paper)", pages.cycles, pages.emulated_writes, pages.hypercalls
    );
    println!(
        "{:<22} | {:>12} | {:>16} | {:>12}",
        "2 MiB sections", sections.cycles, sections.emulated_writes, sections.hypercalls
    );
    rule(76);
    println!(
        "section-mode slowdown: {} — driven by {} data writes that faulted",
        pct(sections.cycles as f64 / pages.cycles as f64 - 1.0),
        sections.emulated_writes
    );
    println!("into over-protected sections and had to round-trip through Hypersec.");
    println!("The paper's ~200-line kernel patch (4 KiB allocation) eliminates all");
    println!("of them: the instrumented kernel pays page-table hypercalls only.");
}
