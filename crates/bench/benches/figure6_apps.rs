//! **Figure 6** — Application benchmark results: normalized execution
//! time of whetstone, dhrystone, untar, iozone and apache under the
//! Native, KVM-guest and Hypernel configurations.
//!
//! The paper reports the figure's summary statistics in §7.1.2: "On
//! average, KVM-guest and Hypernel incur 13.5% and 3.1% of the
//! performance overhead, respectively," with compute-bound benchmarks
//! near native and the kernel-heavy ones (untar, apache) carrying the
//! overhead.
//!
//! Run with `cargo bench -p hypernel-bench --bench figure6_apps`.

use hypernel::Mode;
use hypernel_bench::{app_on, pct, rule};
use hypernel_workloads::AppBenchmark;

fn main() {
    println!("Figure 6: Application benchmarks — normalized execution time");
    println!("(1.00 = native; paper reports the averages: KVM +13.5%, Hypernel +3.1%)");
    rule(78);
    println!(
        "{:<11} | {:>12} | {:>8} {:>8} | {:>9} {:>9}",
        "benchmark", "native (Mcy)", "kvm", "hyperN", "kvm ovh", "hyp ovh"
    );
    rule(78);

    let mut kvm_overheads = Vec::new();
    let mut hyp_overheads = Vec::new();
    for &bench in AppBenchmark::ALL {
        let native = app_on(Mode::Native, bench).expect("native run");
        let kvm = app_on(Mode::KvmGuest, bench).expect("kvm run");
        let hypernel = app_on(Mode::Hypernel, bench).expect("hypernel run");
        let kvm_norm = kvm.total_cycles as f64 / native.total_cycles as f64;
        let hyp_norm = hypernel.total_cycles as f64 / native.total_cycles as f64;
        kvm_overheads.push(kvm_norm - 1.0);
        hyp_overheads.push(hyp_norm - 1.0);
        println!(
            "{:<11} | {:>12.2} | {:>8.3} {:>8.3} | {:>9} {:>9}",
            bench.label(),
            native.total_cycles as f64 / 1e6,
            kvm_norm,
            hyp_norm,
            pct(kvm_norm - 1.0),
            pct(hyp_norm - 1.0),
        );
    }
    rule(78);
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "{:<11} | {:>12} | {:>8} {:>8} | {:>9} {:>9}",
        "average",
        "",
        "",
        "",
        pct(avg(&kvm_overheads)),
        pct(avg(&hyp_overheads)),
    );
    println!();
    println!("paper:    KVM-guest +13.5%, Hypernel +3.1% (average)");
    println!(
        "measured: KVM-guest {}, Hypernel {}",
        pct(avg(&kvm_overheads)),
        pct(avg(&hyp_overheads))
    );
}
