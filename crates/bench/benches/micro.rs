//! Criterion microbenchmarks for the simulator's hot paths: translation
//! (TLB hit, stage-1 miss, nested miss), the MBM pipeline, and the
//! bitmap/ring primitives. These measure *host* wall-clock performance of
//! the simulation itself, complementing the modeled-cycle harnesses.
//!
//! Run with `cargo bench -p hypernel-bench --bench micro`.

use criterion::{criterion_group, criterion_main, Criterion};
use hypernel::machine::addr::{PhysAddr, VirtAddr, PAGE_SIZE};
use hypernel::machine::machine::{Machine, MachineConfig, NullHyp};
use hypernel::machine::pagetable::{apply_entry_write, plan_map, walk, PagePerms};
use hypernel::machine::regs::{hcr, sctlr, ExceptionLevel, SysReg};
use hypernel::mbm::{BitmapLayout, RingLayout, WriteEvent};
use std::hint::black_box;

/// Builds a machine with an identity stage-1 map of the low 32 MiB.
fn stage1_machine() -> Machine {
    let mut m = Machine::new(MachineConfig {
        dram_size: 128 << 20,
        ..MachineConfig::default()
    });
    let root = PhysAddr::new(0x100_0000);
    let mut next = 0x110_0000u64;
    for page in (0..(32u64 << 20)).step_by(PAGE_SIZE as usize) {
        let plan = plan_map(
            m.mem_mut(),
            root,
            page,
            PhysAddr::new(page),
            PagePerms::KERNEL_DATA,
            3,
            &mut || {
                let t = next;
                next += PAGE_SIZE;
                Some(PhysAddr::new(t))
            },
        )
        .expect("plan");
        for w in &plan.writes {
            apply_entry_write(m.mem_mut(), *w);
        }
    }
    m.el2_write_sysreg(SysReg::TTBR0_EL1, root.raw());
    m.el2_write_sysreg(SysReg::TTBR1_EL1, root.raw());
    m.el2_write_sysreg(SysReg::SCTLR_EL1, sctlr::M);
    m.set_el(ExceptionLevel::El1);
    m
}

fn bench_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("translation");
    group.bench_function("tlb_hit_read", |b| {
        let mut m = stage1_machine();
        let mut hyp = NullHyp;
        m.read_u64(VirtAddr::new(0x20_0000), &mut hyp)
            .expect("warm");
        b.iter(|| {
            black_box(
                m.read_u64(black_box(VirtAddr::new(0x20_0000)), &mut hyp)
                    .expect("read"),
            )
        });
    });
    group.bench_function("stage1_miss_walk", |b| {
        let mut m = stage1_machine();
        let mut hyp = NullHyp;
        b.iter(|| {
            m.tlbi_all();
            black_box(
                m.read_u64(black_box(VirtAddr::new(0x20_0000)), &mut hyp)
                    .expect("read"),
            )
        });
    });
    group.bench_function("nested_miss_walk", |b| {
        let mut m = stage1_machine();
        // Stage-2 identity blocks over low memory.
        let s2_root = PhysAddr::new(0x400_0000);
        let mut next = 0x410_0000u64;
        for section in (0..(64u64 << 20)).step_by(2 << 20) {
            let plan = plan_map(
                m.mem_mut(),
                s2_root,
                section,
                PhysAddr::new(section),
                PagePerms::KERNEL_DATA,
                2,
                &mut || {
                    let t = next;
                    next += PAGE_SIZE;
                    Some(PhysAddr::new(t))
                },
            )
            .expect("plan");
            for w in &plan.writes {
                apply_entry_write(m.mem_mut(), *w);
            }
        }
        m.set_el(ExceptionLevel::El2);
        m.el2_write_sysreg(SysReg::VTTBR_EL2, s2_root.raw());
        m.el2_write_sysreg(SysReg::HCR_EL2, hcr::VM);
        m.set_el(ExceptionLevel::El1);
        let mut hyp = NullHyp;
        b.iter(|| {
            m.tlbi_all();
            black_box(
                m.read_u64(black_box(VirtAddr::new(0x20_0000)), &mut hyp)
                    .expect("read"),
            )
        });
    });
    group.bench_function("raw_walk_4_levels", |b| {
        let mut m = stage1_machine();
        let root = PhysAddr::new(0x100_0000);
        b.iter(|| {
            let mut view = m.pt_view();
            black_box(walk(&mut view, root, black_box(0x20_0000)).expect("walk"))
        });
    });
    group.finish();
}

fn bench_mbm(c: &mut Criterion) {
    use hypernel::machine::bus::{BusContext, BusSnooper, BusTransaction};
    use hypernel::machine::irq::IrqController;
    use hypernel::machine::mem::PhysMemory;
    use hypernel::mbm::{Mbm, MbmConfig};

    let mut group = c.benchmark_group("mbm");
    let config = MbmConfig::standard(
        PhysAddr::new(0),
        1 << 20,
        PhysAddr::new(0x40_0000),
        PhysAddr::new(0x50_0000),
        1024,
    );
    group.bench_function("snoop_unwatched_write", |b| {
        let mut mbm = Mbm::new(config);
        let mut mem = PhysMemory::new(0x60_0000);
        let mut irq = IrqController::new();
        let mut extra = 0u64;
        let txn = BusTransaction::WriteWord {
            addr: PhysAddr::new(0x1000),
            value: 7,
        };
        b.iter(|| {
            let mut ctx = BusContext {
                mem: &mut mem,
                irq: &mut irq,
                extra_mem_accesses: &mut extra,
                cycles: 0,
            };
            mbm.on_transaction(black_box(&txn), &mut ctx);
        });
    });
    group.bench_function("snoop_watched_write", |b| {
        let mut mbm = Mbm::new(config);
        let mut mem = PhysMemory::new(0x60_0000);
        let mut irq = IrqController::new();
        let mut extra = 0u64;
        for u in config.bitmap.plan_update(PhysAddr::new(0x1000), 8, true) {
            let cur = mem.read_u64(u.word);
            mem.write_u64(u.word, u.apply_to(cur));
        }
        let txn = BusTransaction::WriteWord {
            addr: PhysAddr::new(0x1000),
            value: 7,
        };
        b.iter(|| {
            let mut ctx = BusContext {
                mem: &mut mem,
                irq: &mut irq,
                extra_mem_accesses: &mut extra,
                cycles: 0,
            };
            mbm.on_transaction(black_box(&txn), &mut ctx);
            // Drain the ring so it never fills.
            config.ring.pop(ctx.mem);
            irq.ack_next();
        });
    });
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    use hypernel::machine::mem::PhysMemory;

    let mut group = c.benchmark_group("primitives");
    group.bench_function("bitmap_plan_update_4k", |b| {
        let layout = BitmapLayout::new(PhysAddr::new(0), 1 << 30, PhysAddr::new(0x4000_0000));
        b.iter(|| black_box(layout.plan_update(black_box(PhysAddr::new(0x12_3000)), 4096, true)));
    });
    group.bench_function("ring_push_pop", |b| {
        let ring = RingLayout::new(PhysAddr::new(0x1000), 1024);
        let mut mem = PhysMemory::new(1 << 20);
        let ev = WriteEvent {
            addr: PhysAddr::new(0x8),
            value: 42,
        };
        b.iter(|| {
            ring.push(&mut mem, black_box(ev));
            black_box(ring.pop(&mut mem))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_translation, bench_mbm, bench_primitives);
criterion_main!(benches);
