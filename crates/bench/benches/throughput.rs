//! **Host throughput** — how fast the simulator itself runs, as
//! opposed to what it simulates.
//!
//! Every other bench target reports *simulated* cycles, which the
//! hot-path work (L0 micro-TLB, MBM watch-page filter, bulk memory
//! ops, warm-boot forking) must leave bit-identical. This target
//! measures the other axis: simulated work retired per host second.
//! Two workloads bracket the hot paths:
//!
//! * `untar` under Hypernel — kernel-heavy syscall streams through the
//!   bulk read/write path, every access through the TLB front, every
//!   bus write past the MBM filter;
//! * a small campaign sweep — the full scenario engine including the
//!   warm-boot template cache.
//!
//! Metrics ending in `_mops` are throughput (higher is better); the
//! perf gate treats a *drop* as the regression. Run with
//! `cargo bench -p hypernel-bench --bench throughput`, or via
//! `just bench-throughput`.

use std::time::Instant;

use hypernel::{Mode, System};
use hypernel_bench::rule;
use hypernel_bench::summary::BenchSummary;
use hypernel_campaign::scenario::{Scenario, StepExpect};
use hypernel_campaign::sweep::{run_sweep, SweepConfig};
use hypernel_kernel::AttackStep;
use hypernel_workloads::AppBenchmark;

/// Repetitions per workload, honoring `HYPERNEL_BENCH_ITERS` (the CI
/// smoke path sets a small count); throughput needs a few repeats to
/// amortize process-level noise.
fn reps() -> u64 {
    std::env::var("HYPERNEL_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

/// Runs `untar` under Hypernel `reps` times; returns
/// `(simulated memory accesses, host seconds)`.
fn untar_throughput(reps: u64) -> (u64, f64) {
    use hypernel_workloads::apps;
    let mut accesses = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        let mut sys = System::boot(Mode::Hypernel).expect("boot");
        {
            let (kernel, machine, hyp) = sys.parts();
            apps::prepare(kernel, machine, hyp, AppBenchmark::Untar).expect("prepare");
            apps::run(kernel, machine, hyp, AppBenchmark::Untar, 1, 42).expect("untar run");
        }
        let stats = sys.machine().stats();
        accesses += stats.reads + stats.writes;
    }
    (accesses, start.elapsed().as_secs_f64())
}

/// Runs a small two-scenario sweep `reps` times; returns
/// `(simulated cycles across all records, host seconds)`.
fn sweep_throughput(reps: u64, seeds: u64) -> (u64, f64) {
    let scenarios = vec![
        Scenario::new("throughput-cred", Mode::Hypernel)
            .background(2)
            .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Detected),
        Scenario::new("throughput-native", Mode::Native).step(
            AttackStep::CredEscalation { pid: 1 },
            StepExpect::Undetected,
        ),
    ];
    let mut cycles = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        let outcome = run_sweep(&scenarios, SweepConfig { seeds, jobs: 1 });
        assert!(outcome.failures.is_empty(), "sweep must run cleanly");
        cycles += outcome.records.iter().map(|r| r.cycles).sum::<u64>();
    }
    (cycles, start.elapsed().as_secs_f64())
}

fn main() {
    let reps = reps();
    let seeds = 8;
    println!("Host throughput: simulated work retired per host second");
    println!("(higher is better; simulated-cycle results are unaffected by design)");
    rule(72);
    println!(
        "{:<16} | {:>14} | {:>10} | {:>12}",
        "workload", "simulated", "host (s)", "sim Mops/s"
    );
    rule(72);

    let (accesses, untar_s) = untar_throughput(reps);
    let untar_mops = accesses as f64 / 1e6 / untar_s;
    println!(
        "{:<16} | {:>11} acc | {:>10.3} | {:>12.2}",
        "untar (hypernel)", accesses, untar_s, untar_mops
    );

    let (cycles, sweep_s) = sweep_throughput(reps, seeds);
    let sweep_mops = cycles as f64 / 1e6 / sweep_s;
    println!(
        "{:<16} | {:>11} cyc | {:>10.3} | {:>12.2}",
        "campaign sweep", cycles, sweep_s, sweep_mops
    );
    rule(72);
    println!("fastpaths: {}", fastpath_label());

    let mut summary = BenchSummary::new("throughput");
    summary
        .metric("untar sim mops", untar_mops)
        .metric("campaign sweep sim mops", sweep_mops);
    summary.write_if_requested();
}

fn fastpath_label() -> &'static str {
    if hypernel_machine::fastpath_enabled() {
        "enabled"
    } else {
        "disabled (HYPERNEL_NO_FASTPATH)"
    }
}
