//! **Table 1** — Execution time of kernel operations (µs) under the
//! Native, KVM-guest and Hypernel configurations.
//!
//! Regenerates the paper's Table 1 rows: nine LMbench kernel operations,
//! measured per-iteration in modeled microseconds at 1.15 GHz, with the
//! paper's own numbers printed alongside for shape comparison.
//!
//! Run with `cargo bench -p hypernel-bench --bench table1_lmbench`.

use hypernel::Mode;
use hypernel_bench::summary::BenchSummary;
use hypernel_bench::{lmbench_on, pct, rule};
use hypernel_workloads::LmbenchOp;

fn main() {
    println!("Table 1: Execution time of kernel operations (us)");
    println!("(measured = this simulation; paper = DAC'18 Table 1)");
    rule(118);
    println!(
        "{:<15} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>9} {:>9} | {:>9} {:>9}",
        "test",
        "native",
        "kvm",
        "hyperN",
        "p:native",
        "p:kvm",
        "p:hyperN",
        "kvm ovh",
        "p:kvm",
        "hyp ovh",
        "p:hyp"
    );
    rule(118);

    let mut kvm_overheads = Vec::new();
    let mut hyp_overheads = Vec::new();
    let mut paper_kvm = Vec::new();
    let mut paper_hyp = Vec::new();
    let mut summary = BenchSummary::new("table1_lmbench");

    for &op in LmbenchOp::ALL {
        let native = lmbench_on(Mode::Native, op).expect("native run");
        let kvm = lmbench_on(Mode::KvmGuest, op).expect("kvm run");
        let hypernel = lmbench_on(Mode::Hypernel, op).expect("hypernel run");

        let kvm_ovh = kvm.overhead_vs(&native);
        let hyp_ovh = hypernel.overhead_vs(&native);
        let p_kvm = op.paper_kvm_us() / op.paper_native_us() - 1.0;
        let p_hyp = op.paper_hypernel_us() / op.paper_native_us() - 1.0;
        kvm_overheads.push(kvm_ovh);
        hyp_overheads.push(hyp_ovh);
        paper_kvm.push(p_kvm);
        paper_hyp.push(p_hyp);
        summary
            .metric(
                &format!("{} native_us", op.label()),
                native.micros_per_iter(),
            )
            .metric(
                &format!("{} hypernel_us", op.label()),
                hypernel.micros_per_iter(),
            )
            .metric(&format!("{} hyp_overhead_pct", op.label()), hyp_ovh * 100.0);

        println!(
            "{:<15} | {:>8.2} {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2} | {:>9} {:>9} | {:>9} {:>9}",
            op.label(),
            native.micros_per_iter(),
            kvm.micros_per_iter(),
            hypernel.micros_per_iter(),
            op.paper_native_us(),
            op.paper_kvm_us(),
            op.paper_hypernel_us(),
            pct(kvm_ovh),
            pct(p_kvm),
            pct(hyp_ovh),
            pct(p_hyp),
        );
    }
    rule(118);
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "{:<15} | {:>26} | {:>26} | {:>9} {:>9} | {:>9} {:>9}",
        "average",
        "",
        "",
        pct(avg(&kvm_overheads)),
        pct(avg(&paper_kvm)),
        pct(avg(&hyp_overheads)),
        pct(avg(&paper_hyp)),
    );
    println!();
    println!(
        "paper: \"the kernel gets slower by 15.5% and 8.8%, respectively with KVM and Hypernel\""
    );
    println!(
        "measured: {} (KVM), {} (Hypernel)",
        pct(avg(&kvm_overheads)),
        pct(avg(&hyp_overheads))
    );
    summary
        .metric("avg_kvm_overhead_pct", avg(&kvm_overheads) * 100.0)
        .metric("avg_hypernel_overhead_pct", avg(&hyp_overheads) * 100.0);
    summary.write_if_requested();
}
