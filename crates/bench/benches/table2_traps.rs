//! **Table 2** — Comparison of the number of trap events under
//! page-granularity vs word-granularity kernel monitoring.
//!
//! Reproduces the paper's §7.2 experiment: two versions of the security
//! solution monitor the `cred` and `dentry` objects on Hypernel — one
//! watching only the sensitive fields (word granularity), one watching
//! every field of the objects. The second count estimates what a
//! page-granularity (read-only page) scheme would pay, because slab
//! packing aggregates the objects into dedicated pages (paper's
//! estimation method). The MBM's matched-event counter is the "number of
//! interrupts generated".
//!
//! Our workloads run ~10× smaller than the paper's for untar/apache
//! (counts scale linearly; the ratio — the paper's claim — does not).
//!
//! Run with `cargo bench -p hypernel-bench --bench table2_traps`.

use hypernel::{Mode, System};
use hypernel_bench::rule;
use hypernel_bench::summary::BenchSummary;
use hypernel_kernel::kernel::{MonitorHooks, MonitorMode};
use hypernel_workloads::{apps, AppBenchmark};

/// Runs one benchmark under the given monitoring mode and returns the
/// MBM's matched-event count.
fn trap_events(bench: AppBenchmark, mode: MonitorMode) -> u64 {
    let mut sys = System::boot(Mode::Hypernel).expect("hypernel boot");
    {
        let (kernel, machine, hyp) = sys.parts();
        apps::prepare(kernel, machine, hyp, bench).expect("prepare");
    }
    // The benchmark starts on a quiet system: the security solution
    // arms now (sweeping existing objects), counters reset now.
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel
            .arm_monitor_hooks(machine, hyp, MonitorHooks { mode })
            .expect("arm hooks");
    }
    sys.reset_mbm_stats();
    {
        let (kernel, machine, hyp) = sys.parts();
        apps::run(kernel, machine, hyp, bench, 1, 42).expect("run");
    }
    let events = sys.mbm_stats().expect("mbm attached").events_matched;
    // Disarm and drain before teardown.
    sys.parts().0.set_monitor_hooks(None);
    let _ = sys.service_interrupts();
    events
}

fn main() {
    println!("Table 2: Comparison of the number of trap events");
    println!("(page-granularity estimated by whole-object monitoring, as in the paper)");
    rule(108);
    println!(
        "{:<11} | {:>12} {:>10} {:>8} | {:>12} {:>10} {:>8} | {:>7}",
        "benchmark", "page-gran", "word-gran", "ratio", "p:page", "p:word", "p:ratio", "scale"
    );
    rule(108);

    let mut ratios = Vec::new();
    let mut paper_ratios = Vec::new();
    let mut summary = BenchSummary::new("table2_traps");
    for &bench in AppBenchmark::ALL {
        let page = trap_events(bench, MonitorMode::WholeObject);
        let word = trap_events(bench, MonitorMode::SensitiveFields);
        let ratio = word as f64 / page.max(1) as f64;
        let p_page = bench.paper_page_granularity_events();
        let p_word = bench.paper_word_granularity_events();
        let p_ratio = p_word as f64 / p_page as f64;
        ratios.push(ratio);
        paper_ratios.push(p_ratio);
        summary
            .metric(&format!("{} page_events", bench.label()), page as f64)
            .metric(&format!("{} word_events", bench.label()), word as f64);
        println!(
            "{:<11} | {:>12} {:>10} {:>7.1}% | {:>12} {:>10} {:>7.1}% | {:>6.0}x",
            bench.label(),
            page,
            word,
            ratio * 100.0,
            p_page,
            p_word,
            p_ratio * 100.0,
            bench.paper_scale_factor(),
        );
    }
    rule(108);
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "average word/page ratio: measured {:.1}%  |  paper {:.1}% (\"about 6.2% of trap events\")",
        avg(&ratios) * 100.0,
        avg(&paper_ratios) * 100.0
    );
    summary.metric("avg_word_page_ratio_pct", avg(&ratios) * 100.0);
    summary.write_if_requested();
}
