//! **Ablation: the MBM's bitmap cache** (paper §6.3).
//!
//! "Since accessing the main memory and fetching the bitmap data for
//! every write event in the same region is inefficient, we implemented a
//! bitmap cache in MBM." This harness quantifies that design choice: the
//! same monitored file-churn workload runs with the cache disabled and at
//! several capacities, and we report the MBM's own DRAM traffic (bitmap
//! fetches) and hit rate.
//!
//! Run with `cargo bench -p hypernel-bench --bench ablation_bitmap_cache`.

use hypernel::machine::PhysAddr;
use hypernel::mbm::MbmConfig;
use hypernel::{Mode, SystemBuilder};
use hypernel_bench::rule;
use hypernel_kernel::kernel::{MonitorHooks, MonitorMode};
use hypernel_kernel::layout;

fn run(cache_words: Option<usize>) -> (u64, u64, Option<f64>) {
    let mut config = MbmConfig::standard(
        PhysAddr::new(layout::MBM_WINDOW_BASE),
        layout::MBM_WINDOW_LEN,
        PhysAddr::new(layout::MBM_BITMAP_BASE),
        PhysAddr::new(layout::MBM_RING_BASE),
        layout::MBM_RING_ENTRIES,
    );
    config.bitmap_cache_words = cache_words;
    let mut sys = SystemBuilder::new(Mode::Hypernel)
        .mbm_config(config)
        .build()
        .expect("boot");
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel
            .arm_monitor_hooks(
                machine,
                hyp,
                MonitorHooks {
                    mode: MonitorMode::WholeObject,
                },
            )
            .expect("arm");
    }
    sys.reset_mbm_stats();
    {
        let (kernel, machine, hyp) = sys.parts();
        for i in 0..400 {
            let path = format!("/tmp/bc{i}");
            kernel.sys_create(machine, hyp, &path).expect("create");
            kernel
                .sys_write_file(machine, hyp, &path, 1024)
                .expect("write");
            kernel.sys_stat(machine, hyp, &path).expect("stat");
            if i % 64 == 63 {
                kernel.poll_irqs(machine, hyp).expect("irqs");
            }
        }
    }
    let stats = sys.mbm_stats().expect("mbm");
    let mbm = sys
        .machine()
        .bus()
        .snooper::<hypernel::mbm::Mbm>()
        .expect("mbm");
    (
        stats.bitmap_lookups,
        stats.device_reads,
        mbm.bitmap_cache_stats().hit_rate(),
    )
}

fn main() {
    println!("Ablation: MBM bitmap cache (paper Fig. 5 / §6.3)");
    println!("workload: 400 file create/write/stat cycles under whole-object monitoring");
    rule(72);
    println!(
        "{:<14} | {:>10} | {:>12} | {:>9} | {:>10}",
        "cache", "lookups", "DRAM fetches", "hit rate", "reduction"
    );
    rule(72);
    let (lookups, base_reads, _) = run(None);
    println!(
        "{:<14} | {:>10} | {:>12} | {:>9} | {:>10}",
        "disabled", lookups, base_reads, "-", "1.0x"
    );
    for words in [4, 16, 64, 256] {
        let (lookups, reads, hit) = run(Some(words));
        println!(
            "{:<14} | {:>10} | {:>12} | {:>8.1}% | {:>9.1}x",
            format!("{words} words"),
            lookups,
            reads,
            hit.unwrap_or(0.0) * 100.0,
            base_reads as f64 / reads.max(1) as f64,
        );
    }
    rule(72);
    println!("Each cached bitmap word covers 64 monitored words (512 B), so even a");
    println!("tiny cache removes nearly all of the monitor's own memory traffic —");
    println!("the property that lets the MBM keep up with the bus at ~55k gates.");
}
