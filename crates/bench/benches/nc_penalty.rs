//! **Supplementary: the non-cacheable penalty of monitoring.**
//!
//! The paper's design makes every page containing a monitored region
//! non-cacheable so the MBM sees all writes (§5.3), but it never
//! quantifies what that costs the *kernel* on its legitimate accesses to
//! those objects. This harness measures it: access latency to a kernel
//! object before and after its page is drawn into monitoring, and the
//! end-to-end cost of a dentry-churn workload as monitoring coverage
//! grows.
//!
//! This is the practical trade-off a deployment must size: word-granular
//! filtering removes the *trap* cost, but bus-visibility still taxes the
//! *data path* of whatever shares a page with a watched word.
//!
//! Run with `cargo bench -p hypernel-bench --bench nc_penalty`.

use hypernel::kernel::kernel::{MonitorHooks, MonitorMode};
use hypernel::kernel::kobj::DentryField;
use hypernel::kernel::layout;
use hypernel::{Mode, System};
use hypernel_bench::rule;

/// Cycles for `n` writes to one dentry field.
fn write_burst(sys: &mut System, path: &str, n: u64) -> u64 {
    let dentry = sys.kernel().dentry_of(path).expect("cached");
    let va = layout::kva(dentry.add(DentryField::Time.byte_offset()));
    let (_kernel, machine, hyp) = sys.parts();
    // Warm.
    machine.write_u64(va, 0, hyp).expect("write");
    let start = machine.cycles();
    for i in 0..n {
        machine.write_u64(va, i, hyp).expect("write");
    }
    machine.cycles() - start
}

fn churn(sys: &mut System, files: usize) -> u64 {
    let (kernel, machine, hyp) = sys.parts();
    let start = machine.cycles();
    for i in 0..files {
        let p = format!("/tmp/nc{i}");
        kernel.sys_create(machine, hyp, &p).expect("create");
        kernel
            .sys_write_file(machine, hyp, &p, 2048)
            .expect("write");
        kernel.sys_stat(machine, hyp, &p).expect("stat");
        kernel.sys_unlink(machine, hyp, &p).expect("unlink");
        kernel.poll_irqs(machine, hyp).expect("irqs");
    }
    machine.cycles() - start
}

fn main() {
    println!("Supplementary: the non-cacheable data-path cost of monitoring");
    rule(74);

    // Microscopic view: one field, cached vs monitored page.
    let mut sys = System::boot(Mode::Hypernel).expect("boot");
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel
            .sys_create(machine, hyp, "/tmp/probe")
            .expect("create");
    }
    let cached = write_burst(&mut sys, "/tmp/probe", 256);
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel
            .arm_monitor_hooks(
                machine,
                hyp,
                MonitorHooks {
                    mode: MonitorMode::SensitiveFields,
                },
            )
            .expect("arm");
    }
    let monitored = write_burst(&mut sys, "/tmp/probe", 256);
    println!("256 stores to a dentry bookkeeping field (cycles):");
    println!("  page cacheable (unmonitored):      {cached:>8}");
    println!("  page non-cacheable (monitored):    {monitored:>8}");
    println!(
        "  per-store penalty:                 {:>8.1}x",
        monitored as f64 / cached as f64
    );
    println!();

    // Macroscopic view: whole-workload cost vs monitoring state.
    let unmonitored = {
        let mut sys = System::boot(Mode::Hypernel).expect("boot");
        churn(&mut sys, 200)
    };
    let word = {
        let mut sys = System::boot(Mode::Hypernel).expect("boot");
        let (kernel, machine, hyp) = sys.parts();
        kernel
            .arm_monitor_hooks(
                machine,
                hyp,
                MonitorHooks {
                    mode: MonitorMode::SensitiveFields,
                },
            )
            .expect("arm");
        churn(&mut sys, 200)
    };
    let object = {
        let mut sys = System::boot(Mode::Hypernel).expect("boot");
        let (kernel, machine, hyp) = sys.parts();
        kernel
            .arm_monitor_hooks(
                machine,
                hyp,
                MonitorHooks {
                    mode: MonitorMode::WholeObject,
                },
            )
            .expect("arm");
        churn(&mut sys, 200)
    };
    println!("200-file churn workload on Hypernel (cycles):");
    println!("  monitoring off:                    {unmonitored:>10}");
    println!(
        "  word-granularity monitoring:       {word:>10}  ({:+.1}%)",
        (word as f64 / unmonitored as f64 - 1.0) * 100.0
    );
    println!(
        "  whole-object monitoring:           {object:>10}  ({:+.1}%)",
        (object as f64 / unmonitored as f64 - 1.0) * 100.0
    );
    rule(74);
    println!("Both policies pay the same *data-path* (non-cacheable) tax — the pages");
    println!("are identical; word granularity wins on the *trap* side (Table 2), and");
    println!("a page-granularity nested-paging scheme would add a world switch per");
    println!("trap on top of this.");
}
