//! Trace inspection: enable the machine's architectural event tracer,
//! run one `fork`, and print the exact sequence of privilege-boundary
//! events it caused — the hypercall-per-descriptor pattern that explains
//! Hypernel's Table 1 fork overhead at a glance.
//!
//! ```sh
//! cargo run --release -p hypernel --example trace_inspection
//! ```

use hypernel::kernel::abi::call;
use hypernel::kernel::kernel::KernelError;
use hypernel::kernel::task::Pid;
use hypernel::machine::trace::TraceEvent;
use hypernel::{Mode, System};

fn main() -> Result<(), KernelError> {
    let mut system = System::boot(Mode::Hypernel)?;
    system.machine_mut().enable_trace(4096);

    let start = system.cycles();
    {
        let (kernel, machine, hyp) = system.parts();
        let child = kernel.sys_fork(machine, hyp)?;
        kernel.switch_to(machine, hyp, child)?;
        kernel.sys_exit(machine, hyp, child, Pid(1))?;
    }
    let end = system.cycles();

    let trace = system.machine().trace().expect("tracing enabled");
    println!(
        "one fork+exit under Hypernel: {} cycles, {} traced events\n",
        end - start,
        trace.len()
    );

    // Histogram by event kind / hypercall number.
    let mut pt_writes = 0u64;
    let mut registrations = 0u64;
    let mut retirements = 0u64;
    let mut other_hvc = 0u64;
    let mut ttbr_traps = 0u64;
    let mut tlb_ops = 0u64;
    for rec in trace.iter() {
        match rec.event {
            TraceEvent::Hypercall { call: c } if c == call::PT_WRITE => pt_writes += 1,
            TraceEvent::Hypercall { call: c } if c == call::PT_REGISTER_TABLE => registrations += 1,
            TraceEvent::Hypercall { call: c } if c == call::PT_UNREGISTER_TABLE => retirements += 1,
            TraceEvent::Hypercall { .. } => other_hvc += 1,
            TraceEvent::SysregTrap { .. } => ttbr_traps += 1,
            TraceEvent::TlbMaintenance => tlb_ops += 1,
            _ => {}
        }
    }
    println!("privilege-boundary breakdown:");
    println!("  PT_WRITE hypercalls (verified descriptor stores): {pt_writes}");
    println!("  PT_REGISTER_TABLE   (fresh tables adopted):       {registrations}");
    println!("  PT_UNREGISTER_TABLE (address space retired):      {retirements}");
    println!("  other hypercalls:                                 {other_hvc}");
    println!("  TVM traps (TTBR0 context-switch validation):      {ttbr_traps}");
    println!("  TLB maintenance:                                  {tlb_ops}");

    println!("\nfirst ten events:");
    for rec in trace.iter().take(10) {
        println!("  @{:>8} {:?}", rec.cycles, rec.event);
    }
    println!("\nEach PT_WRITE is one verified page-table descriptor — fork copies");
    println!("the parent's user mappings into the child's fresh tables, which is");
    println!("exactly why fork carries Hypernel's largest Table 1 overhead while");
    println!("a plain syscall carries none.");
    Ok(())
}
