//! The address translation redirection attack (ATRA) and why Hypernel
//! resists it where bare hardware monitors do not (paper §2, §5.3).
//!
//! ATRA relocates a monitored kernel object by remapping the virtual
//! address that the kernel uses for it: the object's *physical* address —
//! the only thing a bus-level monitor knows — stops receiving the writes.
//! Hypersec closes the semantic gap: every kernel page-table update is
//! verified, and the linear map must stay identity, so the remap itself
//! is refused.
//!
//! ```sh
//! cargo run --release -p hypernel --example atra_defense
//! ```

use hypernel::kernel::kernel::{KernelError, MonitorHooks, MonitorMode};
use hypernel::kernel::kobj::CredField;
use hypernel::kernel::layout;
use hypernel::kernel::task::Pid;
use hypernel::{Mode, System};

fn main() -> Result<(), KernelError> {
    // --- Act 1: the attack works on an unprotected kernel -------------
    println!("Act 1 — native kernel (no Hypersec):\n");
    let mut native = System::boot(Mode::Native)?;
    let target = native.kernel().task(Pid(1)).expect("init").cred;
    println!("  victim: init's cred object at {target}");
    {
        let (kernel, machine, hyp) = native.parts();
        let (outcome, shadow) = kernel.attack_atra(machine, hyp, target)?;
        println!("  ATRA remap of the linear-map page: {outcome}");
        // The attacker now forges "euid = 0" through the normal VA…
        let va = layout::kva(target.add(CredField::Euid.byte_offset()));
        machine.write_u64(va, 0, hyp)?;
        let off = target.offset_from(target.page_base()) + CredField::Euid.byte_offset();
        println!(
            "  write via the kernel VA landed in the shadow frame {} (value {})",
            shadow,
            machine.debug_read_phys(shadow.add(off))
        );
        println!(
            "  the real object still reads euid = {} — any monitor watching",
            machine.debug_read_phys(target.add(CredField::Euid.byte_offset()))
        );
        println!("  the original physical address saw nothing. Monitor blinded.\n");
    }

    // --- Act 2: Hypernel refuses the remap ----------------------------
    println!("Act 2 — Hypernel:\n");
    let mut protected = System::boot(Mode::Hypernel)?;
    {
        let (kernel, machine, hyp) = protected.parts();
        kernel.arm_monitor_hooks(
            machine,
            hyp,
            MonitorHooks {
                mode: MonitorMode::SensitiveFields,
            },
        )?;
    }
    let target = protected.kernel().task(Pid(1)).expect("init").cred;
    {
        let (kernel, machine, hyp) = protected.parts();
        let (outcome, _) = kernel.attack_atra(machine, hyp, target)?;
        println!("  ATRA remap attempt: {outcome}");
        assert!(!outcome.succeeded());
        // With the translation intact, the direct attack is still seen:
        kernel.attack_cred_escalation(machine, hyp, Pid(1))?;
    }
    protected.service_interrupts()?;
    let detections = protected.hypersec().unwrap().detections().len();
    println!("  fallback direct escalation attempt: detected ({detections} verdicts)\n");
    println!("Hypersec's page-table verification (kernel linear map must stay");
    println!("identity) removes the monitor's semantic gap — the MBM always");
    println!("watches the physical addresses the kernel is actually using.");
    Ok(())
}
