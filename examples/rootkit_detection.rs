//! Rootkit detection walkthrough: arm the paper's security solution
//! (cred + dentry integrity monitors at word granularity), run benign
//! workload, then launch two classic rootkit payloads and watch the
//! MBM → Hypersec → application pipeline flag them.
//!
//! ```sh
//! cargo run --release -p hypernel --example rootkit_detection
//! ```

use hypernel::kernel::kernel::{KernelError, MonitorHooks, MonitorMode};
use hypernel::kernel::task::Pid;
use hypernel::{Mode, System};

fn main() -> Result<(), KernelError> {
    let mut system = System::boot(Mode::Hypernel)?;
    println!("Booted the Hypernel configuration (Hypersec at EL2, MBM on the bus).");

    // Arm the security solution: sweep existing creds/dentries into the
    // monitor and hook future allocations.
    {
        let (kernel, machine, hyp) = system.parts();
        kernel.arm_monitor_hooks(
            machine,
            hyp,
            MonitorHooks {
                mode: MonitorMode::SensitiveFields,
            },
        )?;
    }
    let hs = system.hypersec().expect("hypersec installed");
    println!(
        "Armed word-granularity monitoring: {} regions live, {} tables verified.\n",
        hs.stats().regions_live,
        hs.stats().tables_registered
    );

    // Phase 1: benign activity — process churn, file churn.
    {
        let (kernel, machine, hyp) = system.parts();
        for i in 0..5 {
            let child = kernel.sys_fork(machine, hyp)?;
            kernel.switch_to(machine, hyp, child)?;
            kernel.sys_execve(machine, hyp, "/bin/sh")?;
            let path = format!("/tmp/job{i}");
            kernel.sys_create(machine, hyp, &path)?;
            kernel.sys_write_file(machine, hyp, &path, 4096)?;
            kernel.sys_unlink(machine, hyp, &path)?;
            kernel.sys_exit(machine, hyp, child, Pid(1))?;
        }
    }
    system.service_interrupts()?;
    let events = system.mbm_stats().expect("mbm").events_matched;
    let detections = system.hypersec().unwrap().detections().len();
    println!("Phase 1 — benign workload:");
    println!("  {events} monitored writes observed, {detections} flagged (expected 0).\n");
    assert_eq!(detections, 0, "no false positives");

    // Phase 2: the rootkit strikes.
    println!("Phase 2 — rootkit payloads:");
    {
        let (kernel, machine, hyp) = system.parts();
        let o1 = kernel.attack_cred_escalation(machine, hyp, Pid(1))?;
        println!("  cred escalation (euid -> 0, caps -> ~0): {o1}");
        let o2 = kernel.attack_dentry_hijack(machine, hyp, "/bin/sh", 0x666)?;
        println!("  dentry hijack   (/bin/sh inode forged):  {o2}");
    }
    system.service_interrupts()?;

    println!("\nDetections raised by the security applications:");
    for d in system.hypersec().unwrap().detections() {
        println!(
            "  [sid {}] write of {:#x} at {} — {}",
            d.sid, d.event.value, d.event.pa, d.reason
        );
    }
    let n = system.hypersec().unwrap().detections().len();
    assert!(n >= 2, "both payloads flagged");
    println!("\n{n} malicious writes caught; the writes themselves were word-exact:");
    println!("no page-granularity trap storm, no nested paging — the paper's pitch.");
    Ok(())
}
