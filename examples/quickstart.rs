//! Quickstart: boot the three system configurations, run the same kernel
//! operation on each, and compare what the machine did under the hood.
//!
//! ```sh
//! cargo run --release -p hypernel --example quickstart
//! ```

use hypernel::kernel::kernel::KernelError;
use hypernel::kernel::task::Pid;
use hypernel::machine::cost::CostModel;
use hypernel::{Mode, RunReport, System};

fn main() -> Result<(), KernelError> {
    println!("Hypernel quickstart: fork+exit under three configurations\n");
    for mode in [Mode::Native, Mode::KvmGuest, Mode::Hypernel] {
        let mut system = System::boot(mode)?;
        let boot_cycles = system.cycles();

        // Run ten fork+exit pairs — the kernel operation that stresses
        // page-table management the most.
        {
            let (kernel, machine, hyp) = system.parts();
            for _ in 0..10 {
                let child = kernel.sys_fork(machine, hyp)?;
                kernel.switch_to(machine, hyp, child)?;
                kernel.sys_exit(machine, hyp, child, Pid(1))?;
            }
        }

        let report = RunReport::capture(&system);
        let work = report.cycles - boot_cycles;
        println!("== {mode} ==");
        println!(
            "  10x fork+exit: {work} cycles ({:.1} us at 1.15 GHz)",
            CostModel::cycles_to_us(work)
        );
        println!(
            "  hypercalls: {:<6} sysreg traps: {:<6} stage-2 faults: {}",
            report.machine.hypercalls, report.machine.sysreg_traps, report.machine.stage2_faults
        );
        println!(
            "  nested paging: {}",
            if system.machine().regs().stage2_enabled() {
                "ON  (every TLB miss pays two-stage walks)"
            } else {
                "off (Hypernel's whole point)"
            }
        );
        if let Some(mbm) = report.mbm {
            println!(
                "  MBM attached: {} bus writes seen, {} matched",
                mbm.bus_writes_seen, mbm.events_matched
            );
        }
        println!();
    }
    println!("Note how Hypernel routes page-table updates through verified");
    println!("hypercalls (no stage-2 faults), while the KVM guest pays lazy");
    println!("stage-2 faults and nested walks — the contrast the paper's");
    println!("Table 1 quantifies.");
    Ok(())
}
