//! The protection-granularity gap, made visible: run the same
//! file-churn workload twice on Hypernel — once monitoring only the
//! sensitive fields of each kernel object (word granularity), once
//! monitoring whole objects (the paper's estimator for page-granularity
//! schemes) — and compare how many trap events each scheme pays.
//!
//! This is a miniature of the paper's Table 2.
//!
//! ```sh
//! cargo run --release -p hypernel --example granularity_gap
//! ```

use hypernel::kernel::kernel::{KernelError, MonitorHooks, MonitorMode};
use hypernel::{Mode, System};

fn churn(system: &mut System, files: usize) -> Result<(), KernelError> {
    let (kernel, machine, hyp) = system.parts();
    for i in 0..files {
        let path = format!("/tmp/gap{i}");
        kernel.sys_create(machine, hyp, &path)?;
        for _ in 0..4 {
            kernel.sys_write_file(machine, hyp, &path, 1024)?;
        }
        kernel.sys_stat(machine, hyp, &path)?;
        kernel.sys_read_file(machine, hyp, &path, 4096)?;
    }
    kernel.poll_irqs(machine, hyp)?;
    Ok(())
}

fn run(mode: MonitorMode) -> Result<u64, KernelError> {
    let mut system = System::boot(Mode::Hypernel)?;
    {
        let (kernel, machine, hyp) = system.parts();
        kernel.arm_monitor_hooks(machine, hyp, MonitorHooks { mode })?;
    }
    system.reset_mbm_stats();
    churn(&mut system, 200)?;
    Ok(system.mbm_stats().expect("mbm").events_matched)
}

fn main() -> Result<(), KernelError> {
    println!("The protection-granularity gap (paper §1, §7.2)\n");
    println!("Workload: create 200 files, write each 4x, stat and read them.");
    println!("Monitored objects: every cred and dentry in the kernel.\n");

    let word = run(MonitorMode::SensitiveFields)?;
    let object = run(MonitorMode::WholeObject)?;

    println!("trap events, word-granularity bitmap (sensitive fields): {word:>8}");
    println!("trap events, whole-object monitoring (page-gran proxy):  {object:>8}");
    println!(
        "\nthe word-granularity monitor needed only {:.1}% of the traps",
        word as f64 / object as f64 * 100.0
    );
    println!("(the paper measures ~6.2% across its five benchmarks — Table 2)");
    println!(
        "\n{} redundant traps eliminated: every one of those would have been",
        object - word
    );
    println!("a world-switch + fault in a nested-paging design, paid on refcount");
    println!("bumps and LRU rotations that no security policy cares about.");
    Ok(())
}
