//! Compose quickstart: declare a three-domain system in TOML, lower it
//! onto a booted kernel, and watch the compiler-derived watch set catch
//! a cross-domain attack — with zero hand-maintained watch lists.
//!
//! ```sh
//! cargo run --release -p hypernel-campaign --example compose_quickstart
//! ```

use hypernel::Mode;
use hypernel_campaign::engine::boot_system;
use hypernel_campaign::scenario::Scenario;
use hypernel_compose::ComposeDoc;
use hypernel_kernel::AttackStep;

/// A declarative system: who exists, who talks to whom, what they
/// share. Everything else — task spawning, channel tables, mappings,
/// the MBM watch set — is derived by the compose compiler.
const DESCRIPTION: &str = r#"
[compose]
watch = true

[[domain]]
name = "server"
role = "server"
priority = 3
tasks = 2

[[domain]]
name = "client"

[[domain]]
name = "logger"

[[channel]]
name = "req"
from = "client"
to = "server"
capacity = 8

[[channel]]
name = "log"
from = "server"
to = "logger"

[[region]]
name = "shared"
owner = "server"
share = ["client"]
protect = true
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let doc = ComposeDoc::from_toml(DESCRIPTION)?;
    let problems = doc.validate();
    assert!(
        problems.is_empty(),
        "description must validate: {problems:?}"
    );

    println!("Compose quickstart: declarative multi-domain composition\n");
    println!("The compiler lowers the declaration into these steps:");
    for (i, step) in hypernel_compose::plan(&doc).iter().enumerate() {
        println!("  {}. {step}", i + 1);
    }
    println!();

    for mode in [Mode::Native, Mode::KvmGuest, Mode::Hypernel] {
        let scenario = Scenario::new("compose-quickstart", mode).compose(doc.clone());
        let mut sys = boot_system(&scenario)?;

        let stats = sys.kernel().compose_stats();
        println!("== {mode} ==");
        println!(
            "  lowered: {} domains, {} channels, {} region pages",
            stats.server_domains + stats.client_domains,
            stats.channels_created,
            stats.regions_mapped,
        );
        println!(
            "  derived watch set: {} spans ({} merged into {} registrations)",
            stats.watch_spans_derived, stats.watch_spans_merged, stats.watch_calls_issued,
        );

        // The client forges the `req` channel header to impersonate the
        // server. Same write everywhere; only Hypernel sees it.
        let spoof = AttackStep::ChannelSpoof {
            channel: "req".to_string(),
        };
        let result = {
            let (kernel, machine, hyp) = sys.parts();
            kernel.run_attack_step(machine, hyp, &spoof)?
        };
        sys.service_interrupts()?;
        let detections = sys.hypersec().map_or(0, |hs| hs.detections().len());
        println!(
            "  channel-spoof: {:?}, {detections} detection(s)\n",
            result.outcome
        );
    }

    println!("Under native/kvm the spoof lands silently. Under Hypernel the");
    println!("channel header sits inside a watch span the compiler derived");
    println!("from `[[channel]]` alone — the write-once monitor flags it.");
    Ok(())
}
