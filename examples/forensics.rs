//! Attack forensics: inject the paper's cred-escalation rootkit under an
//! armed Hypernel system, then walk the telemetry trace back through the
//! full causal chain — watched-word write → MBM FIFO capture → drain →
//! IRQ → kernel service → EL2 verdict — and print the per-incident
//! report with end-to-end detection latency, the quantity behind the
//! paper's Table 2.
//!
//! ```sh
//! cargo run --release -p hypernel --example forensics
//! ```

use hypernel::analyze::{attribution, forensics};
use hypernel::kernel::kernel::{KernelError, MonitorHooks, MonitorMode};
use hypernel::kernel::task::Pid;
use hypernel::{Mode, SystemBuilder, DEFAULT_TELEMETRY_CAPACITY};

fn main() -> Result<(), KernelError> {
    // Boot Hypernel with word-granular monitoring armed and the
    // telemetry pipeline recording every cross-EL event.
    let mut sys = SystemBuilder::new(Mode::Hypernel)
        .telemetry(DEFAULT_TELEMETRY_CAPACITY)
        .build()?;
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel.arm_monitor_hooks(
            machine,
            hyp,
            MonitorHooks {
                mode: MonitorMode::SensitiveFields,
            },
        )?;
    }

    // The rootkit: forge uid/euid of pid 1 to 0 by writing the cred
    // structure directly, bypassing setuid(). The write itself succeeds
    // — Hypernel detects, it does not prevent, plain data writes.
    {
        let (kernel, machine, hyp) = sys.parts();
        let outcome = kernel.attack_cred_escalation(machine, hyp, Pid(1))?;
        println!(
            "rootkit cred escalation ran: {}",
            if outcome.succeeded() {
                "write landed (as expected — detection, not prevention)"
            } else {
                "write blocked"
            }
        );
    }
    // Deliver the MBM IRQ so the kernel services the FIFO and the EL2
    // security applications render their verdicts.
    sys.service_interrupts()?;

    // What did Hypersec conclude?
    let hs = sys.hypersec().expect("hypersec present in Hypernel mode");
    println!("\nsecurity application verdicts:");
    for d in hs.detections() {
        println!("  [sid {}] {}", d.sid, d.reason);
    }

    // Now the forensics: rebuild every incident's causal timeline from
    // the raw telemetry events alone — exactly what
    // `hypernel-analyze forensics trace.jsonl` does offline.
    let events = sys.telemetry_events().expect("telemetry enabled");
    let incidents = forensics::reconstruct_incidents(&events);
    println!("\n{}", forensics::render_text(&incidents));

    assert!(
        !incidents.is_empty(),
        "the forged cred write must surface as an MBM incident"
    );
    assert!(
        incidents.iter().any(|i| i.detection_latency().is_some()),
        "at least one incident must have a measured detection latency"
    );

    // And the cost side: where did this run's cycles go?
    let attribution = attribution::attribute(&events);
    println!("cycle attribution (top 10):");
    print!("{}", attribution.render_table(10));
    Ok(())
}
