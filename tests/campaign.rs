//! Integration tests for the adversarial campaign engine, run against
//! the shipped scenario corpus in `corpus/`.

use std::path::PathBuf;

use hypernel_campaign::engine::run_one;
use hypernel_campaign::minimize::minimize;
use hypernel_campaign::scenario::Scenario;
use hypernel_campaign::sweep::{run_sweep, SweepConfig};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

fn load_corpus() -> Vec<Scenario> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    paths.sort();
    paths
        .iter()
        .map(|p| {
            let text = std::fs::read_to_string(p).expect("readable");
            Scenario::from_toml(&text)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", p.display()))
        })
        .collect()
}

fn find(scenarios: &[Scenario], name: &str) -> Scenario {
    scenarios
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("corpus is missing `{name}`"))
        .clone()
}

#[test]
fn corpus_parses_and_is_large_enough() {
    let scenarios = load_corpus();
    assert!(
        scenarios.len() >= 8,
        "the shipped corpus must hold at least 8 scenarios, found {}",
        scenarios.len()
    );
    let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
    names.dedup();
    assert_eq!(
        names.len(),
        scenarios.len(),
        "scenario names must be unique"
    );
}

#[test]
fn corpus_sweep_has_zero_unexpected_violations() {
    let scenarios = load_corpus();
    let outcome = run_sweep(&scenarios, SweepConfig { seeds: 2, jobs: 2 });
    assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
    for record in &outcome.records {
        let unexpected: Vec<_> = record.unexpected_violations().collect();
        assert!(
            unexpected.is_empty(),
            "{} seed {}: {unexpected:?}",
            record.scenario,
            record.seed
        );
    }
}

#[test]
fn same_scenario_and_seed_produce_byte_identical_records() {
    let scenario = find(&load_corpus(), "cred-escalation");
    let a = run_one(&scenario, 42).expect("run").to_json().to_string();
    let b = run_one(&scenario, 42).expect("run").to_json().to_string();
    assert_eq!(a, b);
    let c = run_one(&scenario, 43).expect("run").to_json().to_string();
    assert_ne!(a, c, "the seed must actually steer the run");
}

#[test]
fn parallel_sweep_output_is_independent_of_job_count() {
    let scenarios = vec![
        find(&load_corpus(), "cred-escalation"),
        find(&load_corpus(), "native-baseline"),
    ];
    let serial = run_sweep(&scenarios, SweepConfig { seeds: 3, jobs: 1 });
    let pooled = run_sweep(&scenarios, SweepConfig { seeds: 3, jobs: 8 });
    let a: Vec<String> = serial
        .records
        .iter()
        .map(|r| r.to_json().to_string())
        .collect();
    let b: Vec<String> = pooled
        .records
        .iter()
        .map(|r| r.to_json().to_string())
        .collect();
    assert_eq!(a, b, "scheduling must not leak into the artifact");
}

#[test]
fn drop_irq_corpus_scenario_is_flagged_by_the_detection_oracle() {
    let scenario = find(&load_corpus(), "fault-drop-irq");
    let record = run_one(&scenario, 0).expect("run");
    assert!(
        record.passed,
        "the mask is declared: {:?}",
        record.violations
    );
    let detection_flags: Vec<_> = record
        .violations
        .iter()
        .filter(|v| v.oracle == "detection")
        .collect();
    assert_eq!(detection_flags.len(), 1, "{:?}", record.violations);
    assert!(detection_flags[0].expected);
    assert!(
        record.faults.expect("fault counters").irqs_dropped > 0,
        "the fault actually fired"
    );
    assert_eq!(record.detections_total, 0, "the mask held");
}

#[test]
fn minimize_reduces_the_drop_irq_schedule_to_a_tiny_repro() {
    let scenario = find(&load_corpus(), "fault-drop-irq");
    let outcome = minimize(&scenario, 0).expect("minimizes");
    assert!(
        outcome.schedule.len() <= 3,
        "expected a <=3-event repro, got {:?}",
        outcome.schedule
    );
    assert!(!outcome.schedule.is_empty(), "no faults, no mask");
    // The reduced schedule still reproduces the miss.
    assert_eq!(outcome.record.detections_total, 0);
}

#[test]
fn overflow_scenario_attributes_the_miss_to_the_first_dropped_capture() {
    let scenario = find(&load_corpus(), "fifo-overflow");
    let record = run_one(&scenario, 0).expect("run");
    assert!(record.passed, "{:?}", record.violations);
    let mbm = record.mbm.expect("hypernel mode");
    assert!(mbm.fifo_dropped > 0, "pressure must actually overflow");
    let addr = mbm.first_dropped_addr.expect("first drop recorded");
    let excused: Vec<_> = record
        .violations
        .iter()
        .filter(|v| v.oracle == "detection" && v.expected)
        .collect();
    assert_eq!(excused.len(), 1, "{:?}", record.violations);
    assert!(
        excused[0].detail.contains(&format!("{:#x}", addr.raw())),
        "the violation names the dropped address: {}",
        excused[0].detail
    );
}
