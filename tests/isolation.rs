//! Isolation of the secure space without nested paging (paper §5.2):
//! every path by which a compromised kernel could reach Hypersec's
//! memory or subvert translation is exercised against both the
//! defenseless native kernel and the Hypernel configuration.

use hypernel::hypersec::codes;
use hypernel::kernel::layout;
use hypernel::machine::machine::Exception;
use hypernel::machine::regs::{sctlr, SysReg};
use hypernel::machine::VirtAddr;
use hypernel::{Mode, System};

/// Extracts the policy-violation code from a blocked attack outcome.
fn violation_code(outcome: &hypernel::kernel::AttackOutcome) -> Option<String> {
    match outcome {
        hypernel::kernel::AttackOutcome::Blocked { why } => Some(why.clone()),
        hypernel::kernel::AttackOutcome::Succeeded => None,
    }
}

#[test]
fn secure_region_mapping_is_denied_under_hypernel() {
    let mut sys = System::boot(Mode::Hypernel).expect("boot");
    let root = sys
        .kernel()
        .task(hypernel::kernel::task::Pid(1))
        .unwrap()
        .user_root;
    let (kernel, machine, hyp) = sys.parts();
    let outcome = kernel.attack_map_secure_region(machine, hyp, root, 5);
    let why = violation_code(&outcome).expect("must be blocked");
    assert!(
        why.contains(&format!("{}", codes::SECURE_MAPPING)),
        "blocked with the secure-mapping violation, got: {why}"
    );
}

#[test]
fn secure_region_mapping_succeeds_natively() {
    let mut sys = System::boot(Mode::Native).expect("boot");
    let root = sys
        .kernel()
        .task(hypernel::kernel::task::Pid(1))
        .unwrap()
        .user_root;
    let (kernel, machine, hyp) = sys.parts();
    let outcome = kernel.attack_map_secure_region(machine, hyp, root, 5);
    assert!(
        outcome.succeeded(),
        "nothing stops a native kernel: {outcome}"
    );
}

#[test]
fn direct_page_table_writes_fault_under_hypernel() {
    // Page-table pages are read-only in the kernel's own view after LOCK;
    // a store into one takes a permission fault, not effect.
    let mut sys = System::boot(Mode::Hypernel).expect("boot");
    let kernel_root = sys.kernel().kernel_root();
    let before = sys.machine_mut().debug_read_phys(kernel_root);
    let (kernel, machine, hyp) = sys.parts();
    let outcome = kernel.attack_pt_direct_write(machine, hyp, kernel_root, 0, 0xBAD);
    assert!(!outcome.succeeded(), "{outcome}");
    assert_eq!(
        sys.machine_mut().debug_read_phys(kernel_root),
        before,
        "descriptor unchanged"
    );
}

#[test]
fn ttbr_redirect_is_denied_under_hypernel() {
    let mut sys = System::boot(Mode::Hypernel).expect("boot");
    let ttbr_before = sys.machine().read_sysreg(SysReg::TTBR0_EL1);
    let (kernel, machine, hyp) = sys.parts();
    let outcome = kernel
        .attack_ttbr_redirect(machine, hyp)
        .expect("attack runs");
    let why = violation_code(&outcome).expect("must be blocked");
    assert!(
        why.contains(&format!("{}", codes::ROGUE_ROOT)),
        "got: {why}"
    );
    assert_eq!(
        sys.machine().read_sysreg(SysReg::TTBR0_EL1),
        ttbr_before,
        "TTBR0 unchanged"
    );
}

#[test]
fn mmu_cannot_be_disabled_under_hypernel() {
    let mut sys = System::boot(Mode::Hypernel).expect("boot");
    let (_kernel, machine, hyp) = sys.parts();
    let err = machine
        .write_sysreg(SysReg::SCTLR_EL1, 0, hyp)
        .expect_err("must be denied");
    match err {
        Exception::Denied(v) => assert_eq!(v.code, codes::FROZEN_SYSREG),
        other => panic!("expected denial, got {other}"),
    }
    assert_ne!(machine.read_sysreg(SysReg::SCTLR_EL1) & sctlr::M, 0);
}

#[test]
fn translation_config_is_frozen_after_lock() {
    let mut sys = System::boot(Mode::Hypernel).expect("boot");
    let (_kernel, machine, hyp) = sys.parts();
    for reg in [SysReg::TCR_EL1, SysReg::MAIR_EL1] {
        let err = machine
            .write_sysreg(reg, 0xFF, hyp)
            .expect_err("frozen register");
        assert!(matches!(err, Exception::Denied(_)), "{reg} must be frozen");
    }
}

#[test]
fn kernel_has_no_virtual_address_for_secure_memory() {
    // The linear map simply ends at the secure boundary — the strongest
    // form of isolation: nothing to mis-use.
    let mut sys = System::boot(Mode::Hypernel).expect("boot");
    let (_kernel, machine, hyp) = sys.parts();
    let secure_va = VirtAddr::new(layout::LINEAR_BASE + layout::SECURE_BASE);
    let err = machine.read_u64(secure_va, hyp).expect_err("unmapped");
    assert!(matches!(
        err,
        Exception::DataAbort {
            permission: false,
            ..
        }
    ));
}

#[test]
fn forged_hypercalls_are_rejected() {
    use hypernel::kernel::abi::Hypercall;
    let mut sys = System::boot(Mode::Hypernel).expect("boot");
    let (_kernel, machine, hyp) = sys.parts();
    // Unknown call number.
    let err = machine.hvc(0xDEAD, [0; 4], hyp).expect_err("unknown call");
    assert!(matches!(err, Exception::Denied(v) if v.code == codes::UNKNOWN_HYPERCALL));
    // Writing a "table" that was never registered.
    let (nr, args) = Hypercall::PtWrite {
        table: hypernel::machine::PhysAddr::new(0x12_3000),
        index: 0,
        value: 0,
    }
    .encode();
    let err = machine.hvc(nr, args, hyp).expect_err("unregistered table");
    assert!(matches!(err, Exception::Denied(v) if v.code == codes::NOT_A_TABLE));
}

#[test]
fn double_lock_is_rejected() {
    use hypernel::kernel::abi::Hypercall;
    let mut sys = System::boot(Mode::Hypernel).expect("boot");
    let root = sys.kernel().kernel_root();
    let (_kernel, machine, hyp) = sys.parts();
    let (nr, args) = Hypercall::Lock {
        kernel_root: root,
        user_root: root,
    }
    .encode();
    let err = machine.hvc(nr, args, hyp).expect_err("second LOCK");
    assert!(matches!(err, Exception::Denied(v) if v.code == codes::BAD_PHASE));
}

#[test]
fn emulated_writes_cannot_reach_page_tables() {
    use hypernel::kernel::abi::Hypercall;
    let mut sys = System::boot(Mode::Hypernel).expect("boot");
    let kernel_root = sys.kernel().kernel_root();
    let (_kernel, machine, hyp) = sys.parts();
    let (nr, args) = Hypercall::EmulateWrite {
        va: layout::kva(kernel_root),
        value: 0xBAD,
    }
    .encode();
    let err = machine.hvc(nr, args, hyp).expect_err("PT via emulation");
    assert!(matches!(err, Exception::Denied(v) if v.code == codes::BAD_EMULATED_WRITE));
}

#[test]
fn dma_writes_are_at_least_bus_visible() {
    // Paper §8: DMA attacks are out of scope for the prototype, but the
    // MBM sits on the bus and therefore *sees* DMA traffic to monitored
    // words — the basis for the paper's "can detect with additional
    // engineering" claim.
    use hypernel::kernel::kernel::{MonitorHooks, MonitorMode};
    let mut sys = System::boot(Mode::Hypernel).expect("boot");
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel
            .arm_monitor_hooks(
                machine,
                hyp,
                MonitorHooks {
                    mode: MonitorMode::SensitiveFields,
                },
            )
            .expect("arm");
    }
    let cred = sys
        .kernel()
        .task(hypernel::kernel::task::Pid(1))
        .unwrap()
        .cred;
    let euid_pa = cred.add(hypernel::kernel::kobj::CredField::Euid.byte_offset());
    let before = sys.mbm_stats().expect("mbm").events_matched;
    sys.parts().1.dma_write_u64(euid_pa, 0);
    let after = sys.mbm_stats().expect("mbm").events_matched;
    assert_eq!(after, before + 1, "the MBM observed the DMA write");
}

#[test]
fn dma_tampering_with_hypersec_memory_raises_an_alarm() {
    // The §8 extension: Hypersec's private memory (EL2 tables) is never
    // legitimately written over the bus, so the MBM treats any bus write
    // there as DMA tampering — no bitmap bits required.
    let mut sys = System::boot(Mode::Hypernel).expect("boot");
    let alarms_before = sys.mbm_stats().expect("mbm").secure_alarms;
    sys.machine_mut().dma_write_u64(
        hypernel::machine::PhysAddr::new(layout::HYPERSEC_PRIVATE_BASE + 0x2000),
        0xD11A,
    );
    let stats = sys.mbm_stats().expect("mbm");
    assert_eq!(stats.secure_alarms, alarms_before + 1);
    assert!(sys
        .machine()
        .irq()
        .is_pending(hypernel::machine::irq::IrqLine::MBM));
    // Ordinary DMA elsewhere does not alarm.
    sys.machine_mut()
        .irq_mut()
        .ack(hypernel::machine::irq::IrqLine::MBM);
    sys.machine_mut()
        .dma_write_u64(hypernel::machine::PhysAddr::new(0x40_0000), 1);
    assert_eq!(
        sys.mbm_stats().expect("mbm").secure_alarms,
        alarms_before + 1
    );
}

#[test]
fn code_injection_is_blocked_by_wxorx_under_hypernel() {
    let mut sys = System::boot(Mode::Hypernel).expect("boot");
    let (kernel, machine, hyp) = sys.parts();
    let outcome = kernel
        .attack_code_injection(machine, hyp)
        .expect("attack runs");
    let why = violation_code(&outcome).expect("must be blocked");
    assert!(
        why.contains(&format!("{}", codes::WXORX)) || why.contains("permission"),
        "stopped by W^X or the execute-never fetch: {why}"
    );
}

#[test]
fn kernel_text_cannot_be_patched_under_hypernel() {
    let mut sys = System::boot(Mode::Hypernel).expect("boot");
    let target = hypernel::machine::PhysAddr::new(layout::KERNEL_IMAGE_BASE + 0x1_0000);
    let before = sys.machine_mut().debug_read_phys(target);
    let (kernel, machine, hyp) = sys.parts();
    let outcome = kernel.attack_text_patch(machine, hyp).expect("attack runs");
    assert!(!outcome.succeeded(), "{outcome}");
    assert_eq!(
        sys.machine_mut().debug_read_phys(target),
        before,
        "text unchanged"
    );
    // And the whole audit still passes after the attempt.
    assert!(sys.audit_hypersec().unwrap().is_clean());
}
