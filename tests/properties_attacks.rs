//! Property tests over the attack-primitive corpus: for *any* attack
//! primitive and *any* workload interleaving seed,
//!
//! - under **Hypernel** the primitive is either blocked outright or it
//!   succeeds and every watched word it wrote is detected (and the W⊕X
//!   audit stays clean either way);
//! - under **Native** the same primitive succeeds and nothing notices.
//!
//! Runs go through the campaign engine, so these properties exercise
//! the exact pipeline the corpus sweeps use.

use hypernel::Mode;
use hypernel_campaign::engine::run_one;
use hypernel_campaign::scenario::{Scenario, StepExpect};
use hypernel_kernel::AttackStep;
use proptest::prelude::*;

fn arb_attack() -> impl Strategy<Value = AttackStep> {
    prop_oneof![
        any::<u8>().prop_map(|_| AttackStep::CredEscalation { pid: 1 }),
        any::<u16>().prop_map(|inode| AttackStep::DentryHijack {
            path: "/bin/sh".to_string(),
            rogue_inode: 0xE00 + u64::from(inode % 256),
        }),
        Just(AttackStep::MapSecureRegion { pid: 1 }),
        any::<u16>().prop_map(|v| AttackStep::PtDirectWrite {
            pid: 1,
            value: u64::from(v),
        }),
        Just(AttackStep::TtbrRedirect),
        Just(AttackStep::CodeInjection),
        Just(AttackStep::TextPatch),
        Just(AttackStep::AtraCred { pid: 1 }),
        Just(AttackStep::AtraDentry {
            path: "/bin/sh".to_string()
        }),
        Just(AttackStep::DoubleMapCred { pid: 1 }),
    ]
}

fn scenario(name: &str, mode: Mode, step: AttackStep, background: u64) -> Scenario {
    Scenario::new(name, mode)
        .background(background % 5)
        .step(step, StepExpect::Any)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hypernel_blocks_or_detects_every_primitive(
        step in arb_attack(),
        seed in any::<u64>(),
        background in any::<u64>(),
    ) {
        let s = scenario("prop-hypernel", Mode::Hypernel, step.clone(), background);
        let record = run_one(&s, seed).expect("run");
        let sr = &record.steps[0];
        prop_assert!(
            sr.blocked || sr.detections > 0,
            "{} (seed {seed}) succeeded undetected: {:?}",
            sr.name,
            record.violations
        );
        // Whatever the primitive did, the protected invariants hold.
        prop_assert!(
            record.violations.iter().all(|v| v.oracle != "wx"),
            "audit violations: {:?}",
            record.violations
        );
        prop_assert!(record.passed, "unexpected violations: {:?}", record.violations);
    }

    #[test]
    fn native_lets_every_primitive_through_silently(
        step in arb_attack(),
        seed in any::<u64>(),
        background in any::<u64>(),
    ) {
        let s = scenario("prop-native", Mode::Native, step.clone(), background);
        let record = run_one(&s, seed).expect("run");
        let sr = &record.steps[0];
        prop_assert!(!sr.blocked, "{} blocked on a bare kernel", sr.name);
        prop_assert_eq!(record.detections_total, 0, "nothing watches a bare kernel");
    }
}
