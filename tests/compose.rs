//! Compose subsystem integration: the shipped compose corpus
//! round-trips exactly through [`ComposeDoc::to_toml`], a declared
//! multi-domain system lowers to a running kernel with a
//! compiler-derived watch set (no hand-maintained watch lists), and the
//! composed-system artifacts are a pure function of `(scenario, seed)`
//! — byte-identical forked vs freshly booted, fast paths on or off, and
//! at any `--jobs` count.
//!
//! The fast-path comparison uses the per-structure toggles because the
//! process-wide `HYPERNEL_NO_FASTPATH` switch is latched once per
//! process; `just compose-smoke` repeats the comparison across
//! processes with the environment variable.

use std::path::Path;

use hypernel::Mode;
use hypernel_campaign::engine::{boot_system, run_one, run_one_on};
use hypernel_campaign::scenario::Scenario;
use hypernel_campaign::sweep::{run_sweep, SweepConfig, SweepOutcome};
use hypernel_compose::ComposeDoc;
use hypernel_mbm::Mbm;
use proptest::prelude::*;

/// Every compose scenario shipped in the corpus, by file stem.
const COMPOSE_CORPUS: &[&str] = &[
    "compose-cred-theft",
    "compose-cross-kvm",
    "compose-cross-native",
    "compose-spoof",
    "compose-toctou",
];

fn corpus_source(stem: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../corpus/{stem}.toml"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn corpus_compose_docs_round_trip_exactly() {
    for stem in COMPOSE_CORPUS {
        let source = corpus_source(stem);
        let doc = ComposeDoc::from_toml(&source)
            .unwrap_or_else(|e| panic!("{stem}: compose sections parse: {e}"));
        let emitted = doc.to_toml();
        let reparsed = ComposeDoc::from_toml(&emitted)
            .unwrap_or_else(|e| panic!("{stem}: emitted TOML re-parses: {e}"));
        assert_eq!(doc, reparsed, "{stem}: to_toml must preserve the document");
        // Canonical emission is a fixpoint: emitting the reparse is
        // byte-identical to the first emission.
        assert_eq!(emitted, reparsed.to_toml(), "{stem}: to_toml is canonical");
        assert_eq!(doc.validate(), Vec::<String>::new(), "{stem}: valid");
    }
}

/// The acceptance shape: a description with >= 3 domains, >= 2
/// channels and >= 1 shared region lowers to a running system whose
/// watch set was derived by the compiler, not hand-listed.
#[test]
fn declared_system_lowers_with_a_derived_watch_set() {
    let source = corpus_source("compose-cred-theft");
    let scenario = Scenario::from_toml(&source).expect("scenario loads");
    let doc = scenario.compose.as_ref().expect("has a compose section");
    assert!(doc.domains.len() >= 3, "acceptance floor: 3 domains");
    assert!(doc.channels.len() >= 2, "acceptance floor: 2 channels");
    assert!(!doc.regions.is_empty(), "acceptance floor: 1 region");

    // The pure plan mirrors the declaration (+ the ArmWatch step).
    let plan = hypernel_compose::plan(doc);
    assert_eq!(
        plan.len(),
        doc.domains.len() + doc.channels.len() + doc.regions.len() + 1
    );

    let sys = boot_system(&scenario).expect("hypernel boot lowers the description");
    let stats = sys.kernel().compose_stats();
    assert!(stats.server_domains >= 1, "{stats:?}");
    assert_eq!(
        stats.server_domains + stats.client_domains,
        doc.domains.len() as u64
    );
    assert_eq!(stats.channels_created, doc.channels.len() as u64);
    assert!(stats.regions_mapped >= 1 && stats.protected_regions >= 1);
    assert!(stats.watch_spans_derived > 0, "compiler derived the spans");
    assert!(
        stats.watch_calls_issued > 0,
        "hypernel mode registers the derived spans: {stats:?}"
    );

    // Under native the identical lowering runs but arms nothing.
    let mut native = scenario.clone();
    native.mode = Mode::Native;
    let sys = boot_system(&native).expect("native boot lowers too");
    let stats = sys.kernel().compose_stats();
    assert!(stats.watch_spans_derived > 0, "derivation is mode-blind");
    assert_eq!(stats.watch_calls_issued, 0, "nothing consumes the spans");
}

fn compose_scenarios() -> Vec<Scenario> {
    COMPOSE_CORPUS
        .iter()
        .map(|stem| Scenario::from_toml(&corpus_source(stem)).expect("corpus loads"))
        .collect()
}

fn artifact(record: &hypernel_campaign::record::RunRecord) -> String {
    format!("{}\n", record.to_json())
}

fn artifacts(outcome: &SweepOutcome) -> String {
    outcome.records.iter().map(artifact).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn composed_artifacts_are_fork_vs_fresh_identical(seed in 0u64..64) {
        for scenario in &compose_scenarios() {
            let fresh = run_one(scenario, seed).expect("fresh run");
            prop_assert!(fresh.passed, "{}: declared verdicts hold", scenario.name);
            let template = boot_system(scenario).expect("template boot");
            let (forked, _) = run_one_on(template.fork(), scenario, seed).expect("forked run");
            prop_assert_eq!(artifact(&fresh), artifact(&forked), "{}", &scenario.name);
        }
    }

    #[test]
    fn composed_artifacts_survive_fastpath_off(seed in 0u64..64) {
        for scenario in &compose_scenarios() {
            let fast = run_one(scenario, seed).expect("fast-path run");
            let mut sys = boot_system(scenario).expect("boot");
            {
                let (_, machine, _) = sys.parts();
                machine.tlb_mut().set_l0_enabled(false);
                if let Some(mbm) = machine.bus_mut().snooper_mut::<Mbm>() {
                    mbm.set_filter_enabled(false);
                }
            }
            let (slow, _) = run_one_on(sys, scenario, seed).expect("slow-path run");
            prop_assert_eq!(artifact(&fast), artifact(&slow), "{}", &scenario.name);
        }
    }
}

#[test]
fn jobs_count_does_not_change_composed_artifacts() {
    let scenarios = compose_scenarios();
    let serial = run_sweep(&scenarios, SweepConfig { seeds: 4, jobs: 1 });
    let threaded = run_sweep(&scenarios, SweepConfig { seeds: 4, jobs: 4 });
    assert!(serial.failures.is_empty() && threaded.failures.is_empty());
    assert_eq!(
        artifacts(&serial),
        artifacts(&threaded),
        "parallelism must not leak into campaign.jsonl"
    );
}
