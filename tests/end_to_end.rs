//! Whole-system runs across all three configurations: the paper's
//! workloads execute unmodified under Native, KVM-guest and Hypernel,
//! produce consistent results, and show the expected cost ordering.

use hypernel::workloads::{apps, lmbench, AppBenchmark, LmbenchOp};
use hypernel::{Mode, RunReport, System};

#[test]
fn lmbench_suite_runs_in_every_mode() {
    for mode in [Mode::Native, Mode::KvmGuest, Mode::Hypernel] {
        let mut sys = System::boot(mode).expect("boot");
        let (kernel, machine, hyp) = sys.parts();
        for &op in LmbenchOp::ALL {
            let m = lmbench::run_op(kernel, machine, hyp, op, 5).expect("op runs");
            assert!(m.total_cycles > 0, "{mode}/{op} consumed no cycles");
        }
    }
}

#[test]
fn fork_cost_ordering_matches_the_paper() {
    // Paper Table 1: native < Hypernel < KVM for the fork family.
    let mut results = Vec::new();
    for mode in [Mode::Native, Mode::Hypernel, Mode::KvmGuest] {
        let mut sys = System::boot(mode).expect("boot");
        let (kernel, machine, hyp) = sys.parts();
        let m = lmbench::run_op(kernel, machine, hyp, LmbenchOp::ForkExit, 20).expect("fork");
        results.push((mode, m.cycles_per_iter()));
    }
    assert!(
        results[0].1 < results[1].1 && results[1].1 < results[2].1,
        "expected native < hypernel < kvm, got {results:?}"
    );
}

#[test]
fn null_syscall_is_free_of_hypernel_overhead() {
    // Paper: "syscall stat" is essentially unchanged — operations without
    // privileged side effects pay nothing.
    let cost = |mode| {
        let mut sys = System::boot(mode).expect("boot");
        let (kernel, machine, hyp) = sys.parts();
        lmbench::run_op(kernel, machine, hyp, LmbenchOp::SyscallStat, 50)
            .expect("stat")
            .cycles_per_iter()
    };
    let native = cost(Mode::Native);
    let hypernel = cost(Mode::Hypernel);
    assert!(
        (hypernel - native).abs() / native < 0.02,
        "stat should be within 2%: native {native}, hypernel {hypernel}"
    );
}

#[test]
fn hypernel_never_enables_nested_paging() {
    let mut sys = System::boot(Mode::Hypernel).expect("boot");
    {
        let (kernel, machine, hyp) = sys.parts();
        apps::prepare(kernel, machine, hyp, AppBenchmark::Iozone).expect("prepare");
        apps::run(kernel, machine, hyp, AppBenchmark::Iozone, 1, 9).expect("run");
    }
    assert!(!sys.machine().regs().stage2_enabled());
    assert_eq!(sys.machine().stats().stage2_faults, 0);
    // The framework works through hypercalls and traps instead.
    assert!(sys.machine().stats().hypercalls > 0);
    assert!(sys.machine().stats().sysreg_traps > 0);
}

#[test]
fn kvm_guest_pays_in_stage2_faults_not_hypercalls() {
    let mut sys = System::boot(Mode::KvmGuest).expect("boot");
    {
        let (kernel, machine, hyp) = sys.parts();
        apps::prepare(kernel, machine, hyp, AppBenchmark::Iozone).expect("prepare");
        apps::run(kernel, machine, hyp, AppBenchmark::Iozone, 1, 9).expect("run");
    }
    assert!(sys.machine().regs().stage2_enabled());
    assert!(sys.machine().stats().stage2_faults > 0);
    assert_eq!(sys.machine().stats().hypercalls, 0);
    assert!(sys.kvm().unwrap().stats().pages_mapped > 0);
}

#[test]
fn runs_are_deterministic_within_a_mode() {
    let run = || {
        let mut sys = System::boot(Mode::Hypernel).expect("boot");
        let (kernel, machine, hyp) = sys.parts();
        apps::prepare(kernel, machine, hyp, AppBenchmark::Whetstone).expect("prepare");
        apps::run(kernel, machine, hyp, AppBenchmark::Whetstone, 1, 123)
            .expect("run")
            .total_cycles
    };
    assert_eq!(run(), run());
}

#[test]
fn report_captures_everything() {
    let mut sys = System::boot(Mode::Hypernel).expect("boot");
    {
        let (kernel, machine, hyp) = sys.parts();
        lmbench::run_op(kernel, machine, hyp, LmbenchOp::ForkExit, 3).expect("fork");
    }
    let report = RunReport::capture(&sys);
    assert_eq!(report.mode, Mode::Hypernel);
    assert!(report.cycles > 0);
    assert!(report.micros() > 0.0);
    assert!(report.kernel.forks >= 3);
    assert!(report.machine.hypercalls > 0);
    assert!(report.mbm.is_some());
    assert!(report.tlb.hits > 0);
    assert!(report.cache.hits > 0);
}

#[test]
fn long_mixed_workload_survives_every_mode() {
    // A longer soak: process churn, file churn, sockets, demand paging —
    // interleaved — must run to completion with balanced bookkeeping.
    for mode in [Mode::Native, Mode::KvmGuest, Mode::Hypernel] {
        let mut sys = System::boot(mode).expect("boot");
        let (kernel, machine, hyp) = sys.parts();
        let init = hypernel::kernel::task::Pid(1);
        for round in 0..10 {
            let child = kernel.sys_fork(machine, hyp).expect("fork");
            kernel.switch_to(machine, hyp, child).expect("switch");
            kernel.sys_execve(machine, hyp, "/bin/sh").expect("exec");
            let p = format!("/tmp/soak{round}");
            kernel.sys_create(machine, hyp, &p).expect("create");
            kernel
                .sys_write_file(machine, hyp, &p, 8192)
                .expect("write");
            kernel.sys_read_file(machine, hyp, &p, 8192).expect("read");
            let region = kernel.sys_mmap(machine, hyp, 8).expect("mmap");
            kernel.user_touch(machine, hyp, region).expect("touch");
            kernel.sys_munmap(machine, hyp, region).expect("munmap");
            kernel
                .sys_pipe_roundtrip(machine, hyp, child, 128)
                .expect("pipe");
            kernel.sys_unlink(machine, hyp, &p).expect("unlink");
            kernel.sys_exit(machine, hyp, child, init).expect("exit");
            kernel.poll_irqs(machine, hyp).expect("irqs");
        }
        assert_eq!(
            kernel.pids(),
            vec![init],
            "all children reaped under {mode}"
        );
    }
}

#[test]
fn preemptive_scheduling_pays_ttbr_traps_under_hypernel() {
    use hypernel::kernel::sched::Scheduler;
    let mut sys = System::boot(Mode::Hypernel).expect("boot");
    let (kernel, machine, hyp) = sys.parts();
    let a = kernel.sys_fork(machine, hyp).expect("fork");
    let b = kernel.sys_fork(machine, hyp).expect("fork");
    let mut sched = Scheduler::new(1);
    sched.enqueue(a);
    sched.enqueue(b);
    let traps0 = machine.stats().sysreg_traps;
    for _ in 0..12 {
        sched.tick(kernel, machine, hyp).expect("tick");
    }
    assert_eq!(sched.stats().preemptions, 12);
    assert_eq!(
        machine.stats().sysreg_traps - traps0,
        12,
        "every preemption's TTBR0 load is verified by Hypersec"
    );
    // Drain the rotation back to init and clean up.
    while kernel.current() != hypernel::kernel::task::Pid(1) {
        sched.tick(kernel, machine, hyp).expect("tick");
    }
    kernel
        .sys_exit(machine, hyp, a, hypernel::kernel::task::Pid(1))
        .expect("exit a");
    kernel
        .sys_exit(machine, hyp, b, hypernel::kernel::task::Pid(1))
        .expect("exit b");
}
