//! The address translation redirection attack (ATRA, Jang et al.
//! CCS'14) — the known bypass of bare hardware-based external monitors
//! that the paper's §5.3 claims Hypernel resists "because Hypersec can
//! provide the internal state of a processor".
//!
//! Three scenarios:
//! 1. a **bare external monitor** (MBM wired to a machine with no
//!    Hypersec) is blinded by ATRA — reproducing the attack paper's
//!    result;
//! 2. under **Hypernel**, the remap that ATRA needs is rejected by
//!    Hypersec's linear-identity verification;
//! 3. a native kernel performs the remap freely (the attack surface
//!    exists; only the protection differs).

use hypernel::kernel::kernel::{MonitorHooks, MonitorMode};
use hypernel::kernel::kobj::CredField;
use hypernel::kernel::layout;
use hypernel::kernel::task::Pid;
use hypernel::machine::addr::{PhysAddr, VirtAddr, PAGE_SIZE};
use hypernel::machine::machine::{Machine, MachineConfig, NullHyp};
use hypernel::machine::pagetable::{apply_entry_write, plan_map, PagePerms};
use hypernel::machine::regs::{sctlr, ExceptionLevel, SysReg};
use hypernel::mbm::{Mbm, MbmConfig};
use hypernel::{Mode, System};

/// A machine with an MBM but *no Hypersec* — the bare external monitor
/// of Vigilare/KI-Mon, configured (out of band) to watch one word.
struct BareMonitorRig {
    machine: Machine,
    root: PhysAddr,
    next_table: u64,
    hyp: NullHyp,
}

const OBJ_PA: u64 = 0x20_0000;
const OBJ_VA: u64 = 0x20_0000; // identity for simplicity
const BITMAP: u64 = 0x400_0000;
const RING: u64 = 0x500_0000;

impl BareMonitorRig {
    fn new() -> Self {
        let mut machine = Machine::new(MachineConfig {
            dram_size: 0x600_0000,
            ..MachineConfig::default()
        });
        let config = MbmConfig::standard(
            PhysAddr::new(0),
            0x400_0000,
            PhysAddr::new(BITMAP),
            PhysAddr::new(RING),
            256,
        );
        machine.bus_mut().attach(Box::new(Mbm::new(config)));
        let mut rig = Self {
            machine,
            root: PhysAddr::new(0x100_0000),
            next_table: 0x110_0000,
            hyp: NullHyp,
        };
        // Identity-map the object page, non-cacheable so the bus (and the
        // monitor) see every write; plus a normal page for the shadow.
        rig.map(OBJ_VA, OBJ_PA, PagePerms::KERNEL_DATA_NC);
        rig.map(0x30_0000, 0x30_0000, PagePerms::KERNEL_DATA_NC);
        rig.machine
            .el2_write_sysreg(SysReg::TTBR0_EL1, rig.root.raw());
        rig.machine
            .el2_write_sysreg(SysReg::TTBR1_EL1, rig.root.raw());
        rig.machine.el2_write_sysreg(SysReg::SCTLR_EL1, sctlr::M);
        rig.machine.set_el(ExceptionLevel::El1);
        // The monitor vendor programs the bitmap with the object's
        // *physical* address — all a bus-level device can know.
        let layout =
            hypernel::mbm::BitmapLayout::new(PhysAddr::new(0), 0x400_0000, PhysAddr::new(BITMAP));
        for update in layout.plan_update(PhysAddr::new(OBJ_PA), 8, true) {
            let cur = rig.machine.debug_read_phys(update.word);
            rig.machine
                .debug_write_phys(update.word, update.apply_to(cur));
        }
        rig
    }

    fn map(&mut self, va: u64, pa: u64, perms: PagePerms) {
        let next = &mut self.next_table;
        let plan = plan_map(
            self.machine.mem_mut(),
            self.root,
            va,
            PhysAddr::new(pa),
            perms,
            3,
            &mut || {
                let t = *next;
                *next += PAGE_SIZE;
                Some(PhysAddr::new(t))
            },
        )
        .expect("plan");
        for w in &plan.writes {
            apply_entry_write(self.machine.mem_mut(), *w);
        }
    }

    fn events(&self) -> u64 {
        self.machine
            .bus()
            .snooper::<Mbm>()
            .unwrap()
            .stats()
            .events_matched
    }
}

#[test]
fn bare_external_monitor_works_until_atra() {
    let mut rig = BareMonitorRig::new();
    // Phase 1: the monitor catches a direct malicious write.
    rig.machine
        .write_u64(VirtAddr::new(OBJ_VA), 0xE7, &mut rig.hyp)
        .expect("write");
    assert_eq!(rig.events(), 1, "monitor sees the attack");

    // Phase 2: ATRA. The kernel-level attacker rewrites its own page
    // table — nothing stops it on this machine — pointing the object's VA
    // at a shadow page.
    rig.map(OBJ_VA, 0x30_0000, PagePerms::KERNEL_DATA_NC);
    rig.machine.tlbi_all();

    // Phase 3: the same malicious write, via the same virtual address,
    // now lands in the shadow frame. The monitor — knowing only physical
    // addresses — is blind.
    rig.machine
        .write_u64(VirtAddr::new(OBJ_VA), 0xBAD, &mut rig.hyp)
        .expect("redirected write");
    assert_eq!(
        rig.events(),
        1,
        "no event for the redirected write: bypassed"
    );
    assert_eq!(rig.machine.debug_read_phys(PhysAddr::new(0x30_0000)), 0xBAD);
}

#[test]
fn hypernel_rejects_the_atra_remap() {
    let mut sys = System::boot(Mode::Hypernel).expect("boot");
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel
            .arm_monitor_hooks(
                machine,
                hyp,
                MonitorHooks {
                    mode: MonitorMode::SensitiveFields,
                },
            )
            .expect("arm");
    }
    let target = sys.kernel().task(Pid(1)).unwrap().cred;
    let (kernel, machine, hyp) = sys.parts();
    let (outcome, _shadow) = kernel
        .attack_atra(machine, hyp, target)
        .expect("attack runs");
    assert!(
        !outcome.succeeded(),
        "Hypersec must reject the remap: {outcome}"
    );
    assert!(
        outcome.to_string().contains("identity"),
        "rejected by the linear-identity rule: {outcome}"
    );
    // And the monitor still sees subsequent attacks.
    kernel
        .attack_cred_escalation(machine, hyp, Pid(1))
        .expect("attack runs");
    sys.service_interrupts().expect("irqs");
    assert!(!sys.hypersec().unwrap().detections().is_empty());
}

#[test]
fn native_kernel_performs_atra_freely() {
    let mut sys = System::boot(Mode::Native).expect("boot");
    let target = sys.kernel().task(Pid(1)).unwrap().cred;
    let (kernel, machine, hyp) = sys.parts();
    let (outcome, shadow) = kernel
        .attack_atra(machine, hyp, target)
        .expect("attack runs");
    assert!(outcome.succeeded(), "{outcome}");
    // The attacker now manipulates the shadow object through the
    // original virtual address.
    let va = layout::kva(target.add(CredField::Euid.byte_offset()));
    machine.write_u64(va, 0, hyp).expect("redirected write");
    let off = target.offset_from(target.page_base()) + CredField::Euid.byte_offset();
    assert_eq!(machine.debug_read_phys(shadow.add(off)), 0);
}
