//! System-level property tests: under the full Hypernel configuration,
//! arbitrary benign syscall storms must (a) be accepted, (b) keep every
//! Hypersec invariant intact (the auditor re-walks real machine state),
//! (c) raise zero detections, and (d) behave identically across the
//! three configurations in terms of kernel-visible results.

use hypernel::kernel::kernel::{MonitorHooks, MonitorMode};
use hypernel::kernel::task::Pid;
use hypernel::{Mode, System};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    ForkExit,
    Exec,
    FileCycle { id: u8 },
    Stat,
    Mmap { pages: u8 },
    Pipe,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::ForkExit),
        Just(Op::Exec),
        any::<u8>().prop_map(|id| Op::FileCycle { id }),
        Just(Op::Stat),
        (1u8..8).prop_map(|pages| Op::Mmap { pages }),
        Just(Op::Pipe),
    ]
}

fn run(sys: &mut System, ops: &[Op]) {
    let (kernel, machine, hyp) = sys.parts();
    for op in ops {
        match op {
            Op::ForkExit => {
                let child = kernel.sys_fork(machine, hyp).expect("fork");
                kernel.switch_to(machine, hyp, child).expect("switch");
                kernel.sys_exit(machine, hyp, child, Pid(1)).expect("exit");
            }
            Op::Exec => {
                let child = kernel.sys_fork(machine, hyp).expect("fork");
                kernel.switch_to(machine, hyp, child).expect("switch");
                kernel.sys_execve(machine, hyp, "/bin/sh").expect("exec");
                kernel.sys_exit(machine, hyp, child, Pid(1)).expect("exit");
            }
            Op::FileCycle { id } => {
                let p = format!("/tmp/sysprop{id}");
                kernel.sys_create(machine, hyp, &p).expect("create");
                kernel
                    .sys_write_file(machine, hyp, &p, 1024)
                    .expect("write");
                kernel.sys_unlink(machine, hyp, &p).expect("unlink");
            }
            Op::Stat => {
                kernel.sys_stat(machine, hyp, "/bin/sh").expect("stat");
            }
            Op::Mmap { pages } => {
                let base = kernel
                    .sys_mmap(machine, hyp, *pages as usize)
                    .expect("mmap");
                kernel.user_touch(machine, hyp, base).expect("touch");
                kernel.sys_munmap(machine, hyp, base).expect("munmap");
            }
            Op::Pipe => {
                let peer = kernel.sys_fork(machine, hyp).expect("fork");
                kernel
                    .sys_pipe_roundtrip(machine, hyp, peer, 128)
                    .expect("pipe");
                kernel.sys_exit(machine, hyp, peer, Pid(1)).expect("exit");
            }
        }
        kernel.poll_irqs(machine, hyp).expect("irqs");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn hypernel_invariants_survive_benign_storms(
        ops in prop::collection::vec(arb_op(), 1..16),
    ) {
        let mut sys = System::boot(Mode::Hypernel).expect("boot");
        {
            let (kernel, machine, hyp) = sys.parts();
            kernel
                .arm_monitor_hooks(machine, hyp, MonitorHooks {
                    mode: MonitorMode::SensitiveFields,
                })
                .expect("arm");
        }
        run(&mut sys, &ops);
        sys.service_interrupts().expect("drain");

        // (a) tasks balanced
        prop_assert_eq!(sys.kernel().pids(), vec![Pid(1)]);
        // (b) every Hypersec invariant holds on the live machine state
        prop_assert_eq!(
            sys.hypersec().expect("hypersec").detections().len(),
            0,
            "no false positives"
        );
        let report = sys.audit_hypersec().expect("hypernel mode");
        prop_assert!(report.is_clean(), "violations: {:?}", report.violations);
        // (c) monitoring was actually live (events flowed)
        prop_assert!(sys.mbm_stats().expect("mbm").bus_writes_seen > 0);
    }

    #[test]
    fn kernel_results_agree_across_modes(ops in prop::collection::vec(arb_op(), 1..8)) {
        let mut snapshots = Vec::new();
        for mode in [Mode::Native, Mode::KvmGuest, Mode::Hypernel] {
            let mut sys = System::boot(mode).expect("boot");
            run(&mut sys, &ops);
            let k = sys.kernel().stats();
            snapshots.push((k.forks, k.execs, k.exits, k.files_created, k.page_faults));
        }
        // The kernel-visible outcome is configuration-independent; only
        // the cost differs.
        prop_assert_eq!(snapshots[0], snapshots[1]);
        prop_assert_eq!(snapshots[1], snapshots[2]);
    }
}
