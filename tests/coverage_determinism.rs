//! Determinism properties of the coverage atlas: a run's
//! [`CoverageMap`] must be a pure function of `(scenario, seed)` —
//! identical whether the system is freshly booted or forked from a warm
//! template, whether the host fast paths (L0 micro-TLB, MBM watch-page
//! filter) are on or off, and (after the sweep merge) byte-identical
//! at any `--jobs` count.
//!
//! The fast-path comparison uses the per-structure toggles
//! (`Tlb::set_l0_enabled`, `Mbm::set_filter_enabled`) because the
//! process-wide `HYPERNEL_NO_FASTPATH` switch is latched once per
//! process; the CI coverage gate repeats the same comparison across
//! processes with the environment variable.

use hypernel::Mode;
use hypernel_campaign::coverage::{atlas_json, CoverageMap};
use hypernel_campaign::engine::{boot_system, run_one, run_one_on};
use hypernel_campaign::scenario::{Scenario, StepExpect};
use hypernel_campaign::sweep::{run_sweep, SweepConfig, SweepOutcome};
use hypernel_kernel::AttackStep;
use hypernel_mbm::Mbm;
use proptest::prelude::*;

fn scenario() -> Scenario {
    Scenario::new("coverage-det", Mode::Hypernel)
        .background(2)
        .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Detected)
        .step(
            AttackStep::DentryHijack {
                path: "/bin/sh".to_string(),
                rogue_inode: 0xBAD,
            },
            StepExpect::Detected,
        )
}

fn coverage_of(record: &hypernel_campaign::record::RunRecord) -> &CoverageMap {
    record
        .coverage
        .as_ref()
        .expect("campaign runs always record coverage")
}

fn merged_atlas(outcome: &SweepOutcome) -> String {
    let mut merged = CoverageMap::new();
    for record in &outcome.records {
        merged.merge(coverage_of(record));
    }
    format!("{}\n", atlas_json(&merged, outcome.records.len() as u64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn fork_and_fresh_boot_cover_identically(seed in 0u64..64) {
        let s = scenario();
        let fresh = run_one(&s, seed).expect("fresh run");
        let template = boot_system(&s).expect("template boot");
        let (forked, _) = run_one_on(template.fork(), &s, seed).expect("forked run");
        prop_assert_eq!(coverage_of(&fresh), coverage_of(&forked));
    }

    #[test]
    fn host_fastpaths_never_leak_into_coverage(seed in 0u64..64) {
        let s = scenario();
        let fast = run_one(&s, seed).expect("fast-path run");
        let mut sys = boot_system(&s).expect("boot");
        {
            let (_, machine, _) = sys.parts();
            machine.tlb_mut().set_l0_enabled(false);
            if let Some(mbm) = machine.bus_mut().snooper_mut::<Mbm>() {
                mbm.set_filter_enabled(false);
            }
        }
        let (slow, _) = run_one_on(sys, &s, seed).expect("slow-path run");
        prop_assert_eq!(coverage_of(&fast), coverage_of(&slow));
    }
}

#[test]
fn jobs_count_does_not_change_the_atlas() {
    let scenarios = vec![scenario()];
    let serial = run_sweep(&scenarios, SweepConfig { seeds: 4, jobs: 1 });
    let threaded = run_sweep(&scenarios, SweepConfig { seeds: 4, jobs: 4 });
    assert!(serial.failures.is_empty() && threaded.failures.is_empty());
    assert_eq!(
        merged_atlas(&serial),
        merged_atlas(&threaded),
        "parallelism must not leak into coverage.json"
    );
}
