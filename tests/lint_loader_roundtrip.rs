//! Lint/loader round-trip: the scenario TOML loader is deliberately
//! lenient (unknown keys are ignored so old corpora keep loading), and
//! `hypernel-campaign lint` exists to close that gap. These tests pin
//! the contract from both sides:
//!
//! * every key the loader silently ignores — at the top level, in
//!   `[metrics]`, in a `[[step]]`, in a `[[fault]]` — is flagged by
//!   `lint_source`, so a typo can never ship silently;
//! * every key the linter whitelists is actually honored by the loader
//!   (a fully-keyed scenario loads, lints clean, and `to_toml`
//!   round-trips it).

use hypernel_campaign::{lint_source, Scenario};

/// A scenario body exercising every whitelisted key for one step kind
/// and one fault kind, with `{top}`, `{metrics}`, `{step}` and
/// `{fault}` injection points for bogus keys.
fn source(top: &str, metrics: &str, step: &str, fault: &str) -> String {
    format!(
        r#"
name = "demo"
description = "round-trip probe"
mode = "hypernel"
monitor = "whole-object"
background-ops = 2
latency-bound = 60000
fifo-capacity = 8
drain-budget = 2
{top}

[metrics]
window-cycles = 50000
{metrics}

[[step]]
kind = "dentry-hijack"
path = "/bin/login"
rogue-inode = 4919
expect = "detected"
{step}

[[fault]]
kind = "delay-irq"
at = 1
count = 2
steps = 3
{fault}
"#
    )
}

/// The loader accepts the source (leniency) while the linter flags
/// exactly the injected key.
fn assert_ignored_but_flagged(source: &str, key: &str) {
    let scenario = Scenario::from_toml(source).expect("lenient loader still loads");
    // Ignored means ignored: the parsed scenario is identical to the
    // clean one.
    let clean = Scenario::from_toml(&self::source("", "", "", "")).expect("clean loads");
    assert_eq!(scenario, clean, "`{key}` leaked into the parsed scenario");
    let issues = lint_source(Some("demo"), source);
    assert!(
        issues.iter().any(|m| m.contains(key)),
        "lint missed ignored key `{key}`; issues: {issues:?}"
    );
}

#[test]
fn every_loader_ignored_key_is_flagged_by_lint() {
    assert_ignored_but_flagged(&source("latency_bound = 1", "", "", ""), "latency_bound");
    assert_ignored_but_flagged(&source("", "window_cycles = 9", "", ""), "window_cycles");
    assert_ignored_but_flagged(&source("", "", "pidd = 7", ""), "pidd");
    assert_ignored_but_flagged(&source("", "", "", "stepss = 9"), "stepss");
    // Keys that belong to a *different* kind are just as ignored: a
    // dentry-hijack step has no `pid`, a delay-irq fault has no `bit`.
    assert_ignored_but_flagged(&source("", "", "pid = 7", ""), "pid");
    assert_ignored_but_flagged(&source("", "", "", "bit = 3"), "bit");
}

#[test]
fn unknown_sections_are_flagged_too() {
    let with_table = format!("{}\n[telemetry]\nring = 4096\n", source("", "", "", ""));
    Scenario::from_toml(&with_table).expect("lenient loader still loads");
    let issues = lint_source(Some("demo"), &with_table);
    assert!(
        issues.iter().any(|m| m.contains("telemetry")),
        "lint missed unknown section: {issues:?}"
    );
    let with_array = format!("{}\n[[probe]]\nkind = \"x\"\n", source("", "", "", ""));
    Scenario::from_toml(&with_array).expect("lenient loader still loads");
    let issues = lint_source(Some("demo"), &with_array);
    assert!(
        issues.iter().any(|m| m.contains("probe")),
        "lint missed unknown section: {issues:?}"
    );
}

/// Compose sections obey the same contract: bogus keys load leniently
/// but lint dirty, and a fully-keyed description lints clean and
/// round-trips exactly.
#[test]
fn compose_sections_are_pinned_both_ways() {
    fn compose_source(compose: &str, domain: &str, channel: &str, region: &str) -> String {
        format!(
            r#"
name = "demo"
mode = "hypernel"

[compose]
watch = true
{compose}

[[domain]]
name = "server"
role = "server"
priority = 3
tasks = 2
{domain}

[[domain]]
name = "client"

[[channel]]
name = "req"
from = "client"
to = "server"
capacity = 8
{channel}

[[region]]
name = "shared"
owner = "server"
share = ["client"]
pages = 2
protect = true
va = 0x60100000
{region}

[[step]]
kind = "shared-region-toctou"
region = "shared"
expect = "detected"
"#
        )
    }

    let clean = compose_source("", "", "", "");
    assert_eq!(lint_source(Some("demo"), &clean), Vec::<String>::new());
    let scenario = Scenario::from_toml(&clean).expect("loads");
    let reparsed = Scenario::from_toml(&scenario.to_toml()).expect("round-trip loads");
    assert_eq!(scenario, reparsed);

    for (src, key) in [
        (compose_source("watchdog = 1", "", "", ""), "watchdog"),
        (compose_source("", "prio = 3", "", ""), "prio"),
        (compose_source("", "", "depth = 4", ""), "depth"),
        (compose_source("", "", "", "frames = 2"), "frames"),
    ] {
        let dirty = Scenario::from_toml(&src).expect("lenient loader still loads");
        let baseline = Scenario::from_toml(&clean).expect("clean loads");
        assert_eq!(dirty, baseline, "`{key}` leaked into the parsed scenario");
        let issues = lint_source(Some("demo"), &src);
        assert!(
            issues.iter().any(|m| m.contains(key)),
            "lint missed ignored compose key `{key}`; issues: {issues:?}"
        );
    }
}

/// The complementary direction: everything the linter whitelists is a
/// key the loader honors, for every step and fault kind.
#[test]
fn every_whitelisted_key_is_honored_by_the_loader() {
    let clean = source("", "", "", "");
    assert_eq!(lint_source(Some("demo"), &clean), Vec::<String>::new());
    let scenario = Scenario::from_toml(&clean).expect("loads");
    // Honored means present after a serialize/parse round-trip.
    let reparsed = Scenario::from_toml(&scenario.to_toml()).expect("round-trip loads");
    assert_eq!(scenario, reparsed);

    // Compose-targeting steps need the composed system declared, or the
    // linter (correctly) flags the dangling reference.
    const COMPOSE: &str = r#"
[[domain]]
name = "server"
role = "server"

[[domain]]
name = "client"

[[channel]]
name = "req"
from = "client"
to = "server"

[[region]]
name = "shared"
owner = "server"
share = ["client"]
"#;
    let steps = [
        ("cred-escalation", "pid = 2", ""),
        ("map-secure-region", "pid = 2", ""),
        ("atra-cred", "pid = 2", ""),
        ("double-map-cred", "pid = 2", ""),
        (
            "dentry-hijack",
            "path = \"/sbin/init\"\nrogue-inode = 7",
            "",
        ),
        ("pt-direct-write", "pid = 2\nvalue = 13", ""),
        ("atra-dentry", "path = \"/sbin/init\"", ""),
        ("ttbr-redirect", "", ""),
        ("code-injection", "", ""),
        ("text-patch", "", ""),
        (
            "cross-domain-cred-theft",
            "attacker = \"client\"\nvictim = \"server\"",
            COMPOSE,
        ),
        ("shared-region-toctou", "region = \"shared\"", COMPOSE),
        ("channel-spoof", "channel = \"req\"", COMPOSE),
    ];
    let faults = [
        ("delay-irq", "steps = 2"),
        ("flip-snoop-addr", "bit = 5"),
        ("lose-hypercall", "call = 3"),
        ("drop-irq", ""),
        ("stall-translator", ""),
        ("desync-bitmap", ""),
    ];
    for (step_kind, step_params, sections) in steps {
        for (fault_kind, fault_params) in faults {
            let src = format!(
                r#"
name = "demo"
mode = "hypernel"
{sections}
[[step]]
kind = "{step_kind}"
{step_params}
expect = "any"

[[fault]]
kind = "{fault_kind}"
at = 1
count = 1
{fault_params}
"#
            );
            let issues = lint_source(Some("demo"), &src);
            assert_eq!(
                issues,
                Vec::<String>::new(),
                "{step_kind}/{fault_kind} should lint clean"
            );
            let scenario = Scenario::from_toml(&src)
                .unwrap_or_else(|e| panic!("{step_kind}/{fault_kind} should load: {e}"));
            let reparsed = Scenario::from_toml(&scenario.to_toml())
                .unwrap_or_else(|e| panic!("{step_kind}/{fault_kind} round-trip: {e}"));
            assert_eq!(scenario, reparsed, "{step_kind}/{fault_kind}");
        }
    }
}
