//! Determinism properties of the windowed metrics artifact: for any
//! seed, `metrics.jsonl` must be a pure function of `(scenario, seed)`
//! — byte-identical whether the system is freshly booted or forked from
//! a warm template, whether the host fast paths (L0 micro-TLB, MBM
//! watch-page filter) are on or off, and at any `--jobs` count.
//!
//! The fast-path comparison uses the per-structure toggles
//! (`Tlb::set_l0_enabled`, `Mbm::set_filter_enabled`) because the
//! process-wide `HYPERNEL_NO_FASTPATH` switch is latched once per
//! process; the CI determinism gate repeats the same comparison across
//! processes with the environment variable.

use hypernel::Mode;
use hypernel_campaign::engine::{boot_system, run_one, run_one_on};
use hypernel_campaign::scenario::{MetricsSpec, Scenario, StepExpect};
use hypernel_campaign::sweep::{run_sweep, SweepConfig};
use hypernel_kernel::AttackStep;
use hypernel_mbm::Mbm;
use proptest::prelude::*;

fn scenario() -> Scenario {
    Scenario::new("metrics-det", Mode::Hypernel)
        .background(2)
        .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Detected)
        .metrics(MetricsSpec {
            window_cycles: 10_000,
            series: None,
        })
}

fn metrics_bytes(record: &hypernel_campaign::record::RunRecord) -> String {
    record
        .metrics
        .as_ref()
        .expect("campaign runs always record metrics")
        .to_jsonl()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn fork_and_fresh_boot_emit_identical_metrics(seed in 0u64..64) {
        let s = scenario();
        let fresh = run_one(&s, seed).expect("fresh run");
        let template = boot_system(&s).expect("template boot");
        let (forked, _) = run_one_on(template.fork(), &s, seed).expect("forked run");
        prop_assert_eq!(metrics_bytes(&fresh), metrics_bytes(&forked));
        prop_assert_eq!(fresh.to_json().to_string(), forked.to_json().to_string());
    }

    #[test]
    fn host_fastpaths_never_leak_into_metrics(seed in 0u64..64) {
        let s = scenario();
        let fast = run_one(&s, seed).expect("fast-path run");
        let mut sys = boot_system(&s).expect("boot");
        {
            let (_, machine, _) = sys.parts();
            machine.tlb_mut().set_l0_enabled(false);
            if let Some(mbm) = machine.bus_mut().snooper_mut::<Mbm>() {
                mbm.set_filter_enabled(false);
            }
        }
        let (slow, _) = run_one_on(sys, &s, seed).expect("slow-path run");
        prop_assert_eq!(metrics_bytes(&fast), metrics_bytes(&slow));
        prop_assert_eq!(fast.to_json().to_string(), slow.to_json().to_string());
    }
}

#[test]
fn jobs_count_does_not_change_the_metrics() {
    let scenarios = vec![scenario()];
    let serial = run_sweep(&scenarios, SweepConfig { seeds: 4, jobs: 1 });
    let threaded = run_sweep(&scenarios, SweepConfig { seeds: 4, jobs: 4 });
    assert!(serial.failures.is_empty() && threaded.failures.is_empty());
    let a: Vec<String> = serial.records.iter().map(metrics_bytes).collect();
    let b: Vec<String> = threaded.records.iter().map(metrics_bytes).collect();
    assert_eq!(a, b, "parallelism must not leak into metrics.jsonl");
}
