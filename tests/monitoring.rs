//! The word-granularity monitoring pipeline end to end (paper Fig. 4):
//! hook → hypercall → bitmap programming + cache-disable → bus-visible
//! write → MBM match → ring buffer → interrupt → Hypersec dispatch →
//! security-application verdict.

use hypernel::kernel::abi::Hypercall;
use hypernel::kernel::kernel::{MonitorHooks, MonitorMode};
use hypernel::kernel::kobj::{DentryField, ObjectKind};
use hypernel::kernel::layout;
use hypernel::machine::machine::Exception;
use hypernel::{Mode, System};

fn armed(mode: MonitorMode) -> System {
    let mut sys = System::boot(Mode::Hypernel).expect("boot");
    let (kernel, machine, hyp) = sys.parts();
    kernel
        .arm_monitor_hooks(machine, hyp, MonitorHooks { mode })
        .expect("arm");
    sys
}

#[test]
fn registration_pipeline_reaches_the_bitmap() {
    let mut sys = armed(MonitorMode::SensitiveFields);
    let hs = sys.hypersec().expect("hypersec");
    // Boot dentries + the init cred were swept in.
    assert!(hs.stats().regions_live > 0);
    let regions = hs.regions().len();
    // Creating a file registers its dentry's sensitive runs (3 runs).
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel
            .sys_create(machine, hyp, "/tmp/watched")
            .expect("create");
    }
    let hs = sys.hypersec().expect("hypersec");
    assert_eq!(
        hs.regions().len(),
        regions + ObjectKind::Dentry.sensitive_ranges().len()
    );
}

#[test]
fn word_filtering_is_exact() {
    // Writes to non-sensitive words of a monitored dentry produce no
    // events under sensitive-field monitoring; one sensitive write does.
    let mut sys = armed(MonitorMode::SensitiveFields);
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel
            .sys_create(machine, hyp, "/tmp/exact")
            .expect("create");
    }
    sys.service_interrupts().expect("drain");
    sys.reset_mbm_stats();
    let dentry = sys.kernel().dentry_of("/tmp/exact").expect("cached");
    {
        let (_kernel, machine, hyp) = sys.parts();
        // Non-sensitive churn: Count, Seq, Time.
        for f in [DentryField::Count, DentryField::Seq, DentryField::Time] {
            machine
                .write_u64(layout::kva(dentry.add(f.byte_offset())), 7, hyp)
                .expect("write");
        }
    }
    assert_eq!(sys.mbm_stats().unwrap().events_matched, 0);
    {
        let (_kernel, machine, hyp) = sys.parts();
        machine
            .write_u64(
                layout::kva(dentry.add(DentryField::Inode.byte_offset())),
                0xF00D,
                hyp,
            )
            .expect("write");
    }
    assert_eq!(sys.mbm_stats().unwrap().events_matched, 1);
}

#[test]
fn monitored_pages_become_non_cacheable_and_back() {
    let mut sys = armed(MonitorMode::SensitiveFields);
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel.sys_create(machine, hyp, "/tmp/nc").expect("create");
    }
    let dentry = sys.kernel().dentry_of("/tmp/nc").expect("cached");
    // Every write to the monitored page goes on the bus.
    let writes0 = sys.machine().bus().writes();
    {
        let (_kernel, machine, hyp) = sys.parts();
        machine
            .write_u64(
                layout::kva(dentry.add(DentryField::Time.byte_offset())),
                1,
                hyp,
            )
            .expect("write");
    }
    assert!(sys.machine().bus().writes() > writes0, "bus-visible");
    // Unlink unregisters; once no region covers the page it may become
    // cacheable again and writes can hide in the cache.
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel.sys_unlink(machine, hyp, "/tmp/nc").expect("unlink");
    }
    // NOTE: other dentries share the slab page, so the page may stay NC;
    // this only asserts the unregister path ran without violation.
    sys.service_interrupts().expect("drain");
}

#[test]
fn interrupt_forwarding_reaches_the_application() {
    let mut sys = armed(MonitorMode::SensitiveFields);
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel.sys_create(machine, hyp, "/tmp/irq").expect("create");
    }
    let forwarded0 = sys.kernel().stats().irqs_forwarded;
    let dispatched0 = sys.hypersec().unwrap().stats().events_dispatched;
    let dentry = sys.kernel().dentry_of("/tmp/irq").expect("cached");
    {
        let (_kernel, machine, hyp) = sys.parts();
        machine
            .write_u64(
                layout::kva(dentry.add(DentryField::Parent.byte_offset())),
                0xABC000,
                hyp,
            )
            .expect("write");
    }
    sys.service_interrupts().expect("drain");
    assert!(sys.kernel().stats().irqs_forwarded > forwarded0);
    assert!(sys.hypersec().unwrap().stats().events_dispatched > dispatched0);
}

#[test]
fn duplicate_and_bogus_registrations_are_rejected() {
    let mut sys = armed(MonitorMode::SensitiveFields);
    let (_kernel, machine, hyp) = sys.parts();
    // Unknown sid.
    let (nr, args) = Hypercall::MonitorRegister {
        sid: 999,
        base: layout::kva(hypernel::machine::PhysAddr::new(0x40_0000)),
        len: 8,
    }
    .encode();
    assert!(matches!(
        machine.hvc(nr, args, hyp),
        Err(Exception::Denied(_))
    ));
    // Unaligned region.
    let (nr, args) = Hypercall::MonitorRegister {
        sid: hypernel::kernel::abi::sid::CRED_MONITOR,
        base: layout::kva(hypernel::machine::PhysAddr::new(0x40_0003)),
        len: 8,
    }
    .encode();
    assert!(matches!(
        machine.hvc(nr, args, hyp),
        Err(Exception::Denied(_))
    ));
    // Unregistering something that was never registered.
    let (nr, args) = Hypercall::MonitorUnregister {
        sid: hypernel::kernel::abi::sid::CRED_MONITOR,
        base: layout::kva(hypernel::machine::PhysAddr::new(0x40_0000)),
        len: 8,
    }
    .encode();
    assert!(matches!(
        machine.hvc(nr, args, hyp),
        Err(Exception::Denied(_))
    ));
}

#[test]
fn whole_object_monitoring_sees_the_churn_word_monitoring_skips() {
    let word_events = {
        let mut sys = armed(MonitorMode::SensitiveFields);
        sys.reset_mbm_stats();
        let (kernel, machine, hyp) = sys.parts();
        for i in 0..20 {
            let p = format!("/tmp/churn{i}");
            kernel.sys_create(machine, hyp, &p).expect("create");
            kernel
                .sys_write_file(machine, hyp, &p, 2048)
                .expect("write");
            kernel.sys_stat(machine, hyp, &p).expect("stat");
        }
        sys.mbm_stats().unwrap().events_matched
    };
    let object_events = {
        let mut sys = armed(MonitorMode::WholeObject);
        sys.reset_mbm_stats();
        let (kernel, machine, hyp) = sys.parts();
        for i in 0..20 {
            let p = format!("/tmp/churn{i}");
            kernel.sys_create(machine, hyp, &p).expect("create");
            kernel
                .sys_write_file(machine, hyp, &p, 2048)
                .expect("write");
            kernel.sys_stat(machine, hyp, &p).expect("stat");
        }
        sys.mbm_stats().unwrap().events_matched
    };
    assert!(
        object_events >= word_events * 4,
        "whole-object ({object_events}) must dwarf word-granularity ({word_events})"
    );
}

#[test]
fn mbm_pipeline_statistics_are_consistent() {
    let mut sys = armed(MonitorMode::WholeObject);
    {
        let (kernel, machine, hyp) = sys.parts();
        for i in 0..10 {
            let p = format!("/tmp/s{i}");
            kernel.sys_create(machine, hyp, &p).expect("create");
        }
    }
    sys.service_interrupts().expect("drain");
    let stats = sys.mbm_stats().unwrap();
    assert!(stats.captured >= stats.events_matched);
    assert!(stats.bitmap_lookups >= stats.events_matched);
    assert_eq!(stats.fifo_dropped, 0, "lossless configuration");
    assert_eq!(stats.ring_overflows, 0, "ring drained in time");
    // Hypersec dispatched exactly the matched events (none stray).
    let hs = sys.hypersec().unwrap().stats();
    assert_eq!(hs.events_dispatched + hs.stray_events, stats.events_matched);
}

#[test]
fn rename_uses_the_authorized_update_window() {
    // rename legitimately rewrites sensitive dentry fields (name hash,
    // parent). Done through the kernel's unregister/rewrite/re-register
    // window it raises no detection; the same writes forged directly do.
    let mut sys = armed(MonitorMode::SensitiveFields);
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel
            .sys_create(machine, hyp, "/tmp/mv-src")
            .expect("create");
        kernel
            .sys_rename(machine, hyp, "/tmp/mv-src", "/tmp/mv-dst")
            .expect("rename");
    }
    sys.service_interrupts().expect("drain");
    assert!(
        sys.hypersec().unwrap().detections().is_empty(),
        "authorized rename flagged: {:?}",
        sys.hypersec().unwrap().detections()
    );
    // Now forge the same field outside a window.
    let dentry = sys.kernel().dentry_of("/tmp/mv-dst").expect("cached");
    {
        let (_kernel, machine, hyp) = sys.parts();
        machine
            .write_u64(
                layout::kva(dentry.add(DentryField::NameHash.byte_offset())),
                0xF0F0,
                hyp,
            )
            .expect("forge");
    }
    sys.service_interrupts().expect("drain");
    assert!(
        !sys.hypersec().unwrap().detections().is_empty(),
        "unauthorized forge must be flagged"
    );
}

#[test]
fn ring_overflow_is_loud_not_silent() {
    // Failure injection: a tiny output ring overflows under an event
    // storm. Events are lost (documented hardware behavior), but the loss
    // is observable — ring_overflows counts every dropped event, so a
    // deployment can size the ring and the interrupt cadence.
    use hypernel::machine::PhysAddr;
    use hypernel::mbm::MbmConfig;
    use hypernel::SystemBuilder;

    let config = MbmConfig::standard(
        PhysAddr::new(hypernel::kernel::layout::MBM_WINDOW_BASE),
        hypernel::kernel::layout::MBM_WINDOW_LEN,
        PhysAddr::new(hypernel::kernel::layout::MBM_BITMAP_BASE),
        PhysAddr::new(hypernel::kernel::layout::MBM_RING_BASE),
        8, // eight entries only
    );
    let mut sys = SystemBuilder::new(hypernel::Mode::Hypernel)
        .mbm_config(config)
        .build()
        .expect("boot");
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel
            .arm_monitor_hooks(
                machine,
                hyp,
                MonitorHooks {
                    mode: MonitorMode::WholeObject,
                },
            )
            .expect("arm");
        // Storm: many monitored writes with no interrupt servicing.
        for i in 0..30 {
            let p = format!("/tmp/storm{i}");
            kernel.sys_create(machine, hyp, &p).expect("create");
        }
    }
    let stats = sys.mbm_stats().expect("mbm");
    assert!(
        stats.ring_overflows > 0,
        "storm must overflow an 8-entry ring"
    );
    let hs = sys.hypersec().unwrap().stats();
    let accounted =
        stats.ring_overflows + hs.events_dispatched + hs.stray_events + ring_backlog(&mut sys);
    assert_eq!(
        stats.events_matched, accounted,
        "every matched event is accounted: delivered, queued, or counted lost"
    );
}

/// Events still sitting in the ring (matched, not yet dispatched).
fn ring_backlog(sys: &mut System) -> u64 {
    use hypernel::mbm::RingLayout;
    let ring = RingLayout::new(
        hypernel::machine::PhysAddr::new(hypernel::kernel::layout::MBM_RING_BASE),
        8,
    );
    ring.len(sys.machine_mut().mem_mut())
}

#[test]
fn custom_whitelist_app_rides_the_same_pipeline() {
    // Host a third-party security application (a KI-Mon-style vtable
    // guard) next to the built-in monitors and drive it end to end.
    use hypernel::hypersec::ValueWhitelistMonitor;
    use hypernel::kernel::abi::Hypercall;
    use hypernel::SystemBuilder;

    const GUARD_SID: u32 = 40;
    let mut sys = SystemBuilder::new(Mode::Hypernel)
        .app(Box::new(ValueWhitelistMonitor::new(
            GUARD_SID,
            "vtable-guard",
            [0],
            [0xD0, 0xD1],
        )))
        .build()
        .expect("boot");
    // Register one watched word on behalf of the custom app: the d_op
    // slot of a file's dentry.
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel.sys_create(machine, hyp, "/tmp/vt").expect("create");
    }
    let dentry = sys.kernel().dentry_of("/tmp/vt").expect("cached");
    let op_va = layout::kva(dentry.add(DentryField::Op.byte_offset()));
    {
        let (_kernel, machine, hyp) = sys.parts();
        let (nr, args) = Hypercall::MonitorRegister {
            sid: GUARD_SID,
            base: op_va,
            len: 8,
        }
        .encode();
        machine.hvc(nr, args, hyp).expect("register");
        // A whitelisted vtable swap: benign.
        machine.write_u64(op_va, 0xD1, hyp).expect("write");
        // A forged pointer: malicious.
        machine.write_u64(op_va, 0xBADBAD, hyp).expect("write");
    }
    sys.service_interrupts().expect("drain");
    let detections = sys.hypersec().unwrap().detections();
    let guard_hits: Vec<_> = detections.iter().filter(|d| d.sid == GUARD_SID).collect();
    assert_eq!(
        guard_hits.len(),
        1,
        "exactly the forged write: {detections:?}"
    );
    assert!(guard_hits[0].reason.contains("whitelist"));
}
