//! End-to-end attack detection: the rootkit payloads of the paper's
//! motivating scenarios (cred escalation, dentry hijack) run against all
//! three system configurations. Natively they succeed silently; under
//! Hypernel the MBM observes the writes and the security applications
//! flag them.

use hypernel::kernel::abi::sid;
use hypernel::kernel::kernel::{MonitorHooks, MonitorMode};
use hypernel::kernel::kobj::CredField;
use hypernel::kernel::task::Pid;
use hypernel::{Mode, System};

fn armed_hypernel(mode: MonitorMode) -> System {
    let mut sys = System::boot(Mode::Hypernel).expect("hypernel boot");
    let (kernel, machine, hyp) = sys.parts();
    kernel
        .arm_monitor_hooks(machine, hyp, MonitorHooks { mode })
        .expect("arm hooks");
    sys
}

#[test]
fn cred_escalation_is_detected_under_hypernel() {
    let mut sys = armed_hypernel(MonitorMode::SensitiveFields);
    {
        let (kernel, machine, hyp) = sys.parts();
        let outcome = kernel
            .attack_cred_escalation(machine, hyp, Pid(1))
            .expect("attack runs");
        // Hypernel detects rather than prevents plain data writes.
        assert!(outcome.succeeded());
    }
    sys.service_interrupts().expect("irq path");
    let hs = sys.hypersec().expect("hypersec");
    let detections = hs.detections();
    assert!(
        !detections.is_empty(),
        "the cred monitor must flag the escalation"
    );
    assert!(detections.iter().any(|d| d.sid == sid::CRED_MONITOR));
    assert!(detections
        .iter()
        .any(|d| d.reason.contains("privilege-escalation")));
    // The flagged write is the euid/uid forge (value 0).
    assert!(detections.iter().any(|d| d.event.value == 0));
}

#[test]
fn cred_escalation_is_invisible_natively() {
    let mut sys = System::boot(Mode::Native).expect("native boot");
    let (kernel, machine, hyp) = sys.parts();
    let outcome = kernel
        .attack_cred_escalation(machine, hyp, Pid(1))
        .expect("attack runs");
    assert!(outcome.succeeded());
    // Nothing watched, nothing raised.
    assert!(sys.mbm_stats().is_none());
    assert_eq!(sys.machine().stats().irqs_delivered, 0);
}

#[test]
fn dentry_hijack_is_detected_under_hypernel() {
    let mut sys = armed_hypernel(MonitorMode::SensitiveFields);
    {
        let (kernel, machine, hyp) = sys.parts();
        let outcome = kernel
            .attack_dentry_hijack(machine, hyp, "/bin/sh", 0xE11)
            .expect("attack runs");
        assert!(outcome.succeeded());
    }
    sys.service_interrupts().expect("irq path");
    let hs = sys.hypersec().expect("hypersec");
    assert!(hs
        .detections()
        .iter()
        .any(|d| d.sid == sid::DENTRY_MONITOR && d.reason.contains("hijack")));
}

#[test]
fn whole_object_monitoring_also_detects_but_with_more_noise() {
    // The paper's second solution (whole-object monitoring) detects the
    // same attacks; the difference is the trap volume, not the verdict.
    let mut sys = armed_hypernel(MonitorMode::WholeObject);
    {
        let (kernel, machine, hyp) = sys.parts();
        // Benign kernel activity generates events under whole-object
        // monitoring (refcount churn)…
        kernel.sys_stat(machine, hyp, "/bin/sh").expect("stat");
        kernel
            .attack_cred_escalation(machine, hyp, Pid(1))
            .expect("attack runs");
    }
    sys.service_interrupts().expect("irq path");
    let events = sys.mbm_stats().expect("mbm").events_matched;
    let hs = sys.hypersec().expect("hypersec");
    assert!(hs.detections().iter().any(|d| d.sid == sid::CRED_MONITOR));
    assert!(
        events > hs.detections().len() as u64,
        "whole-object monitoring fires on benign churn too"
    );
}

#[test]
fn benign_workloads_raise_no_detections() {
    // False-positive check: ordinary kernel activity — process lifecycle,
    // file churn — must not trip the write-once invariants.
    let mut sys = armed_hypernel(MonitorMode::SensitiveFields);
    {
        let (kernel, machine, hyp) = sys.parts();
        for i in 0..3 {
            let child = kernel.sys_fork(machine, hyp).expect("fork");
            kernel.switch_to(machine, hyp, child).expect("switch");
            kernel.sys_execve(machine, hyp, "/bin/sh").expect("exec");
            let path = format!("/tmp/benign{i}");
            kernel.sys_create(machine, hyp, &path).expect("create");
            kernel
                .sys_write_file(machine, hyp, &path, 4096)
                .expect("write");
            kernel.sys_stat(machine, hyp, &path).expect("stat");
            kernel.sys_unlink(machine, hyp, &path).expect("unlink");
            kernel.sys_exit(machine, hyp, child, Pid(1)).expect("exit");
        }
    }
    sys.service_interrupts().expect("irq path");
    let hs = sys.hypersec().expect("hypersec");
    assert!(
        hs.detections().is_empty(),
        "benign activity flagged: {:?}",
        hs.detections()
    );
    // The monitor did observe real events (it is not asleep).
    assert!(sys.mbm_stats().expect("mbm").events_matched > 0);
}

#[test]
fn detection_event_carries_forensics() {
    let mut sys = armed_hypernel(MonitorMode::SensitiveFields);
    let cred = sys.kernel().task(Pid(1)).expect("init").cred;
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel
            .attack_cred_escalation(machine, hyp, Pid(1))
            .expect("attack runs");
    }
    sys.service_interrupts().expect("irq path");
    let hs = sys.hypersec().expect("hypersec");
    let d = hs
        .detections()
        .iter()
        .find(|d| d.sid == sid::CRED_MONITOR)
        .expect("cred detection");
    // The event's physical address points into the victim cred's
    // sensitive run.
    let lo = cred.add(CredField::Uid.byte_offset());
    let hi = cred.add(CredField::CapBset.byte_offset());
    assert!(
        d.event.pa >= lo && d.event.pa <= hi,
        "pa {} within cred sensitive run",
        d.event.pa
    );
}
