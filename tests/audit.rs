//! Integration tests for the static whole-system auditor, its
//! differential cross-check against Hypersec's incremental verifier,
//! and the ownership sanitizer's zero-cost-when-off contract
//! (docs/AUDIT.md).
//!
//! The load-bearing properties:
//!
//! - for *any* attack primitive and seed under Hypernel, the static and
//!   incremental audits agree (proptest);
//! - a deliberately miswired verifier (W⊕X check disabled) is caught by
//!   the differential — the static pass sees the mapping the
//!   incremental pass no longer checks;
//! - a `desync-bitmap` hardware fault is caught by the audit oracle
//!   (bitmap lookup divergences) even when every other oracle has an
//!   excuse;
//! - under Native, attack footprints surface as the expected static
//!   findings (`linear-identity`, `rogue-root`, `wx-mapping`);
//! - enabling the sanitizer changes no simulated result.

use hypernel::Mode;
use hypernel_campaign::engine::{boot_system, run_one, run_one_full};
use hypernel_campaign::scenario::{Scenario, StepExpect};
use hypernel_kernel::AttackStep;
use hypernel_machine::FaultSpec;
use proptest::prelude::*;

fn arb_attack() -> impl Strategy<Value = AttackStep> {
    prop_oneof![
        Just(AttackStep::CredEscalation { pid: 1 }),
        any::<u16>().prop_map(|inode| AttackStep::DentryHijack {
            path: "/bin/sh".to_string(),
            rogue_inode: 0xE00 + u64::from(inode % 256),
        }),
        Just(AttackStep::MapSecureRegion { pid: 1 }),
        any::<u16>().prop_map(|v| AttackStep::PtDirectWrite {
            pid: 1,
            value: u64::from(v),
        }),
        Just(AttackStep::TtbrRedirect),
        Just(AttackStep::CodeInjection),
        Just(AttackStep::TextPatch),
        Just(AttackStep::AtraCred { pid: 1 }),
        Just(AttackStep::AtraDentry {
            path: "/bin/sh".to_string()
        }),
        Just(AttackStep::DoubleMapCred { pid: 1 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any primitive and interleaving, the static auditor and the
    /// incremental verifier reach the same verdict — the differential
    /// never fires on a correctly-wired system.
    #[test]
    fn static_and_incremental_audits_always_agree(
        step in arb_attack(),
        seed in any::<u64>(),
        background in any::<u64>(),
    ) {
        let s = Scenario::new("prop-audit", Mode::Hypernel)
            .background(background % 5)
            .step(step, StepExpect::Any);
        let record = run_one(&s, seed).expect("run");
        let audit = record.audit.expect("every run carries an audit record");
        prop_assert_eq!(
            audit.differential_agrees,
            Some(true),
            "disagreement (seed {}): {:?}",
            seed,
            record.violations
        );
        prop_assert_eq!(audit.findings, 0, "static findings under Hypernel: {:?}", record.violations);
        prop_assert!(audit.tables > 0 && audit.leaves > 0, "the walk must cover the graph");
        prop_assert!(record.passed, "unexpected violations: {:?}", record.violations);
    }
}

/// A desynced watch bitmap blinds the decision unit: the detection gap
/// is excused by the declared fault (`masked`), the W⊕X/incremental
/// audits are clean — only the audit oracle, watching the MBM's
/// lookup-divergence counter, reports the run as genuinely broken.
#[test]
fn desync_bitmap_fault_is_caught_only_by_the_audit_oracle() {
    let scenario = Scenario::new("unit-desync", Mode::Hypernel)
        .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Masked)
        .fault(FaultSpec::desync_bitmap(1, u64::MAX));
    let record = run_one(&scenario, 3).expect("run");
    let mbm = record.mbm.expect("hypernel runs have MBM stats");
    assert!(
        mbm.lookup_divergences > 0,
        "the fault must actually desync a lookup"
    );
    let unexpected: Vec<_> = record.violations.iter().filter(|v| !v.expected).collect();
    assert!(
        !unexpected.is_empty() && unexpected.iter().all(|v| v.oracle == "audit"),
        "only the audit oracle may flag the desync as unexpected: {:?}",
        record.violations
    );
    assert!(
        unexpected.iter().any(|v| v.detail.contains("desync")),
        "the violation must name the desync: {unexpected:?}"
    );
    assert!(!record.passed);
}

/// The differential's reason to exist: disable the incremental
/// verifier's W⊕X check (a seeded verifier bug) and the injected
/// writable+executable mapping sails through every runtime check — but
/// the static pass, which re-derives the invariant from the raw tables,
/// sees it, and the disagreement convicts the verifier.
#[test]
fn miswired_verifier_is_convicted_by_the_differential() {
    let scenario = Scenario::new("unit-miswired", Mode::Hypernel)
        .step(AttackStep::CodeInjection, StepExpect::Any);
    let mut sys = boot_system(&scenario).expect("boot");
    sys.hypersec_mut()
        .expect("hypernel mode has hypersec")
        .testonly_disable_wx_check();
    let (record, _, mut sys) = run_one_full(sys, &scenario, 1).expect("run");

    assert!(
        !record.steps[0].blocked,
        "with the check disabled the injection must land"
    );
    let audit = record.audit.expect("audit record");
    assert_eq!(
        audit.differential_agrees,
        Some(false),
        "the static pass must disagree with the blinded verifier"
    );
    assert!(audit.findings > 0);
    assert!(
        record
            .violations
            .iter()
            .any(|v| v.oracle == "audit" && !v.expected && v.detail.contains("disagreement")),
        "the disagreement must be an unexpected violation: {:?}",
        record.violations
    );
    assert!(!record.passed);

    // The report itself names the missed invariant, with a descriptor
    // chain proving where it lives.
    let report = sys.audit_static();
    assert!(report
        .findings
        .iter()
        .any(|f| f.check == hypernel_audit::CheckKind::WxMapping));
    let diff = report.differential.expect("locked system runs it");
    assert!(!diff.agrees());
    assert!(diff.static_findings > diff.incremental_violations.len() as u64);
}

/// Under Native the attacks land by design, and the static auditor
/// names each footprint with the right invariant.
#[test]
fn native_attack_footprints_surface_as_expected_findings() {
    let cases = [
        (AttackStep::DoubleMapCred { pid: 1 }, "linear-identity"),
        (AttackStep::TtbrRedirect, "rogue-root"),
        (AttackStep::CodeInjection, "wx-mapping"),
    ];
    for (step, check) in cases {
        let name = step.name().to_string();
        let scenario =
            Scenario::new("unit-native-audit", Mode::Native).step(step, StepExpect::Undetected);
        let record = run_one(&scenario, 1).expect("run");
        let audit_violations: Vec<_> = record
            .violations
            .iter()
            .filter(|v| v.oracle == "audit")
            .collect();
        assert!(
            audit_violations.iter().any(|v| v.detail.contains(check)),
            "{name}: expected a `{check}` finding, got {audit_violations:?}"
        );
        assert!(
            audit_violations.iter().all(|v| v.expected),
            "{name}: native footprint findings are declared/expected"
        );
        assert!(record.passed, "{name}: {:?}", record.violations);
    }
}

/// The sanitizer is contractually free when enabled on a clean system
/// and *zero-cost* in simulated terms either way: the same (scenario,
/// seed) produces byte-identical records and identical cycle counts
/// with and without it.
#[test]
fn sanitizer_costs_zero_simulated_cycles_and_changes_no_result() {
    let scenario = Scenario::new("unit-sanitizer-cost", Mode::Hypernel)
        .background(3)
        .step(AttackStep::CredEscalation { pid: 1 }, StepExpect::Detected);

    let plain = boot_system(&scenario).expect("boot");
    let mut tagged = boot_system(&scenario).expect("boot");
    tagged.enable_sanitizer();
    assert!(tagged.sanitizer_enabled());

    let (record_plain, _, sys_plain) = run_one_full(plain, &scenario, 9).expect("run");
    let (record_tagged, _, mut sys_tagged) = run_one_full(tagged, &scenario, 9).expect("run");

    assert_eq!(
        sys_plain.cycles(),
        sys_tagged.cycles(),
        "zero simulated cost"
    );
    assert_eq!(
        record_plain.to_json().to_string(),
        record_tagged.to_json().to_string(),
        "byte-identical run record"
    );

    // And the tagged run really was checking: the report carries the
    // sanitizer counters, with nothing denied on a healthy system.
    let report = sys_tagged.audit_static();
    let sanitizer = report.sanitizer.as_ref().expect("enabled");
    assert!(sanitizer.stats.checked > 0, "stores were checked");
    assert_eq!(sanitizer.stats.denied, 0);
    assert!(report.is_clean(), "{report:?}");
}
