//! Fault injection at the machine/MBM boundary, end to end: the
//! `SystemBuilder::fault_plan` hook must degrade the detection pipeline
//! in exactly the declared way — and `System::service_interrupts` must
//! drain *everything* pending in one call, even when servicing one
//! interrupt surfaces the next (snoop-FIFO backlog translating
//! mid-drain).

use hypernel::kernel::kernel::{MonitorHooks, MonitorMode};
use hypernel::kernel::task::Pid;
use hypernel::machine::{FaultPlan, FaultSpec};
use hypernel::mbm::Mbm;
use hypernel::system::SystemBuilder;
use hypernel::{Mode, System};

fn arm(sys: &mut System) {
    let (kernel, machine, hyp) = sys.parts();
    kernel
        .arm_monitor_hooks(
            machine,
            hyp,
            MonitorHooks {
                mode: MonitorMode::SensitiveFields,
            },
        )
        .expect("arm hooks");
}

fn set_drain_budget(sys: &mut System, budget: Option<usize>) {
    sys.machine_mut()
        .bus_mut()
        .snooper_mut::<Mbm>()
        .expect("mbm attached")
        .config_mut()
        .drain_per_transaction = budget;
}

/// The satellite bugfix: a single `service_interrupts` call must not
/// stop after the first interrupt when the FIFO refills mid-drain.
///
/// Setup: stall the translator completely while the attack runs, so all
/// four sensitive-field writes sit captured-but-untranslated. Then allow
/// one translation per pipeline step. Each serviced interrupt surfaces
/// the next event only after another device step — the exact shape the
/// old single-`step_devices` loop missed.
#[test]
fn service_interrupts_drains_fifo_backlog_in_one_call() {
    let mut sys = System::boot(Mode::Hypernel).expect("boot");
    arm(&mut sys);
    set_drain_budget(&mut sys, Some(0)); // translator wedged
    {
        let (kernel, machine, hyp) = sys.parts();
        let outcome = kernel
            .attack_cred_escalation(machine, hyp, Pid(1))
            .expect("attack runs");
        assert!(outcome.succeeded());
    }
    let backlog = sys
        .machine()
        .bus()
        .snooper::<Mbm>()
        .expect("mbm")
        .fifo_len();
    assert!(backlog >= 4, "all cred writes captured, none translated");
    set_drain_budget(&mut sys, Some(1)); // one event per step
    let handled = sys.service_interrupts().expect("irq path");
    assert!(
        handled >= 2,
        "the loop must keep servicing past the first ack ({handled})"
    );
    assert_eq!(
        sys.mbm_stats().expect("mbm").events_matched,
        backlog as u64,
        "every backlogged capture translated"
    );
    assert_eq!(
        sys.machine()
            .bus()
            .snooper::<Mbm>()
            .expect("mbm")
            .fifo_len(),
        0,
        "FIFO fully drained"
    );
    assert_eq!(
        sys.service_interrupts().expect("irq path"),
        0,
        "nothing left pending"
    );
    let hs = sys.hypersec().expect("hypersec");
    assert!(
        !hs.detections().is_empty(),
        "backlogged escalation still detected"
    );
}

/// A dropped MBM interrupt suppresses the detection that write should
/// have produced — the fault the drop-irq campaign scenario exercises.
#[test]
fn dropped_irq_masks_detection() {
    let mut sys = SystemBuilder::new(Mode::Hypernel)
        .fault_plan(FaultPlan::new().with(FaultSpec::drop_irq(1, u64::MAX)))
        .build()
        .expect("boot");
    arm(&mut sys);
    {
        let (kernel, machine, hyp) = sys.parts();
        let outcome = kernel
            .attack_cred_escalation(machine, hyp, Pid(1))
            .expect("attack runs");
        assert!(outcome.succeeded());
    }
    sys.service_interrupts().expect("irq path");
    let stats = sys.fault_stats().expect("injector installed");
    assert!(stats.irqs_dropped >= 1, "the drop fault fired");
    let hs = sys.hypersec().expect("hypersec");
    assert!(
        hs.detections().is_empty(),
        "every IRQ dropped ⇒ Hypersec never notified"
    );
    // The evidence is still in the ring: the monitor saw the writes.
    let mbm = sys.mbm_stats().expect("mbm");
    assert!(mbm.events_matched >= 4);
    assert_eq!(mbm.irqs_raised, 0);
}

/// A *delayed* interrupt only defers detection: the next service pass
/// still finds it.
#[test]
fn delayed_irq_defers_but_does_not_mask_detection() {
    let mut sys = SystemBuilder::new(Mode::Hypernel)
        .fault_plan(FaultPlan::new().with(FaultSpec::delay_irq(1, u64::MAX, 3)))
        .build()
        .expect("boot");
    arm(&mut sys);
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel
            .attack_cred_escalation(machine, hyp, Pid(1))
            .expect("attack runs");
    }
    // The drain-all loop keeps stepping devices until the delayed
    // assertions mature, so even a delayed IRQ lands within one call.
    sys.service_interrupts().expect("irq path");
    let stats = sys.fault_stats().expect("injector installed");
    assert!(stats.irqs_delayed >= 1, "the delay fault fired");
    assert!(
        !sys.hypersec().expect("hypersec").detections().is_empty(),
        "delay must not mask detection"
    );
}

/// A desynced watch bitmap blinds the decision unit for the faulted
/// lookups: those writes produce no match at all.
#[test]
fn bitmap_desync_blinds_the_monitor() {
    let mut sys = SystemBuilder::new(Mode::Hypernel)
        .fault_plan(FaultPlan::new().with(FaultSpec::desync_bitmap(1, u64::MAX)))
        .build()
        .expect("boot");
    arm(&mut sys);
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel
            .attack_cred_escalation(machine, hyp, Pid(1))
            .expect("attack runs");
    }
    sys.service_interrupts().expect("irq path");
    let mbm = sys.mbm_stats().expect("mbm");
    assert_eq!(mbm.events_matched, 0, "desync hides every watched write");
    let stats = sys.fault_stats().expect("injector installed");
    assert!(stats.bitmap_desyncs >= 4);
}

/// Fault counters surface in the JSON run artifact.
#[test]
fn run_report_carries_fault_counters() {
    use hypernel::report::RunReport;
    use hypernel::telemetry::json::Json;
    let mut sys = SystemBuilder::new(Mode::Hypernel)
        .fault_plan(FaultPlan::new().with(FaultSpec::drop_irq(1, 2)))
        .build()
        .expect("boot");
    arm(&mut sys);
    {
        let (kernel, machine, hyp) = sys.parts();
        kernel
            .attack_cred_escalation(machine, hyp, Pid(1))
            .expect("attack runs");
    }
    sys.service_interrupts().expect("irq path");
    let doc = Json::parse(&RunReport::capture(&sys).to_json().to_string()).expect("valid JSON");
    let faults = doc.get("faults").expect("faults section present");
    assert_eq!(faults.get("irqs_dropped").and_then(Json::as_u64), Some(2));
    assert!(faults.get("total").and_then(Json::as_u64).unwrap() >= 2);
}
